//! Property-based tests for the gate-level substrate.

use proptest::prelude::*;
use st2_circuit::builder::{
    carry_select_adder, pack_inputs, reference_adder, ripple_adder, unpack_outputs,
};
use st2_circuit::sim::EventSim;
use st2_circuit::VoltageModel;

fn mask_for(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

proptest! {
    /// Every adder construction computes exact binary addition.
    #[test]
    fn all_adders_add(
        bits in 1u32..=64,
        a: u64,
        b: u64,
        cin: bool,
    ) {
        let m = mask_for(bits);
        let (a, b) = (a & m, b & m);
        let wide = a as u128 + b as u128 + u128::from(cin);
        for net in [ripple_adder(bits), reference_adder(bits)] {
            let outs = net.eval(&pack_inputs(bits, a, b, cin));
            let (sum, cout) = unpack_outputs(bits, &outs);
            prop_assert_eq!(sum, (wide as u64) & m);
            prop_assert_eq!(cout, wide >> bits & 1 == 1);
        }
    }

    /// The carry-select composition is exact for any slicing.
    #[test]
    fn csla_adds_for_any_slicing(
        bits in 2u32..=48,
        slice in 1u32..=16,
        a: u64,
        b: u64,
        cin: bool,
    ) {
        prop_assume!(slice <= bits);
        let m = mask_for(bits);
        let (a, b) = (a & m, b & m);
        let net = carry_select_adder(bits, slice);
        let outs = net.eval(&pack_inputs(bits, a, b, cin));
        let (sum, cout) = unpack_outputs(bits, &outs);
        let wide = a as u128 + b as u128 + u128::from(cin);
        prop_assert_eq!(sum, (wide as u64) & m);
        prop_assert_eq!(cout, wide >> bits & 1 == 1);
    }

    /// Event-driven simulation always settles to the functional value and
    /// within the static critical path.
    #[test]
    fn event_sim_settles_correctly(
        bits in 1u32..=32,
        pairs in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..20),
    ) {
        let net = ripple_adder(bits);
        let cp = net.critical_path();
        let mut sim = EventSim::new(&net);
        let m = mask_for(bits);
        for &(a, b, cin) in &pairs {
            let ins = pack_inputs(bits, a & m, b & m, cin);
            let report = sim.apply(&ins);
            prop_assert!(report.settle_time <= cp);
            prop_assert_eq!(sim.outputs(), net.eval(&ins));
        }
    }

    /// Repeating an input vector never toggles anything.
    #[test]
    fn repeated_vectors_are_free(bits in 1u32..=24, a: u64, b: u64) {
        let net = ripple_adder(bits);
        let mut sim = EventSim::new(&net);
        let m = mask_for(bits);
        let ins = pack_inputs(bits, a & m, b & m, false);
        let _ = sim.apply(&ins);
        let again = sim.apply(&ins);
        prop_assert_eq!(again.toggles, 0);
    }

    /// Voltage scaling: delay factors are >= 1 below nominal and energy is
    /// exactly quadratic.
    #[test]
    fn voltage_model_monotonicity(v in 0.45f64..1.0, cap in 0.1f64..1000.0) {
        let m = VoltageModel::saed90_like();
        prop_assert!(m.delay_factor(v) >= 1.0);
        prop_assert!(m.delay_factor(v) >= m.delay_factor((v + 1.0) / 2.0));
        let e_full = m.switching_energy_fj(cap, 1.0);
        let e_v = m.switching_energy_fj(cap, v);
        prop_assert!((e_v / e_full - v * v).abs() < 1e-12);
    }

    /// The minimum scaled voltage meets its own deadline.
    #[test]
    fn min_voltage_meets_period(units in 1u32..60, slack in 1.0f64..4.0) {
        let m = VoltageModel::saed90_like();
        let period = m.path_delay_ps(units, 1.0) * slack;
        if let Some(v) = m.min_voltage_fraction_for_path(units, period) {
            prop_assert!(m.path_delay_ps(units, v) <= period + 1e-9);
        }
    }
}
