//! Adder characterisation: the circuit-level design-space exploration of
//! §V-B and the energy coefficients the power model consumes.
//!
//! The flow mirrors the paper's: determine the reference adder's minimum
//! delay at nominal voltage (this defines the nominal clock period), then
//! for each candidate slice bitwidth find the supply voltage at which the
//! slice still fits within that period, and evaluate per-operation energy
//! on a random input stream.

use crate::builder::{pack_inputs, reference_adder, ripple_adder};
use crate::netlist::Netlist;
use crate::sim::EventSim;
use crate::volt::VoltageModel;
use serde::{Deserialize, Serialize};

/// A simple deterministic 64-bit generator (splitmix64) so the
/// characterisation is reproducible without external dependencies.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One point of the slice-bitwidth design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlicePoint {
    /// Slice width in bits.
    pub width: u32,
    /// Number of slices composing a 64-bit adder.
    pub slices: u32,
    /// Lowest supply fraction at which the slice fits the nominal period.
    pub vmin_frac: f64,
    /// Energy of one slice computation at `vmin_frac` (fJ), including the
    /// speculative-adder cell overhead (registers, compare, select).
    pub slice_energy_fj: f64,
    /// Energy of a full 64-bit first-cycle computation (all slices, fJ).
    pub adder_energy_fj: f64,
    /// Potential per-adder energy saving vs the reference (0‥1), assuming
    /// perfect prediction (first cycle only).
    pub savings_frac: f64,
}

/// Energy/delay coefficients exported to the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdderEnergyTable {
    /// Nominal clock period (ps) — reference 64-bit adder at nominal V.
    pub nominal_period_ps: f64,
    /// Reference 64-bit adder energy per operation at nominal V (fJ).
    pub reference_energy_fj: f64,
    /// Reference 32-bit adder energy per operation at nominal V (fJ) —
    /// the TITAN V's native ALU width.
    pub reference32_energy_fj: f64,
    /// One 8-bit slice computation at the scaled voltage (fJ), including
    /// speculative-cell overhead.
    pub slice_energy_fj: f64,
    /// The scaled supply fraction for 8-bit slices.
    pub slice_vmin_frac: f64,
    /// CRF row read energy (fJ) — 224 bits read per warp access.
    pub crf_read_energy_fj: f64,
    /// CRF row write energy (fJ).
    pub crf_write_energy_fj: f64,
    /// Per-op energy of a CSLA of the same width (fJ) — duplicated slices.
    pub csla_energy_fj: f64,
}

impl AdderEnergyTable {
    /// First-cycle energy of an `n`-slice speculative adder (fJ).
    #[must_use]
    pub fn st2_first_cycle_fj(&self, slices: u32) -> f64 {
        f64::from(slices) * self.slice_energy_fj
    }
}

/// The characterisation engine.
#[derive(Debug, Clone)]
pub struct Characterizer {
    volt: VoltageModel,
    vectors: usize,
    seed: u64,
    /// Fixed per-slice speculative-cell overhead as a fraction of slice
    /// switching energy (input/output/state registers, carry compare,
    /// select mux — the red additions in the paper's Fig. 4).
    cell_overhead_frac: f64,
}

impl Characterizer {
    /// Default 90 nm-like characteriser (500 random vectors, fixed seed).
    #[must_use]
    pub fn default_90nm() -> Self {
        Characterizer {
            volt: VoltageModel::saed90_like(),
            vectors: 500,
            seed: 0x5EED_CAFE,
            cell_overhead_frac: 0.12,
        }
    }

    /// Overrides the number of random vectors (for quick tests).
    #[must_use]
    pub fn with_vectors(mut self, vectors: usize) -> Self {
        self.vectors = vectors;
        self
    }

    /// The voltage model in use.
    #[must_use]
    pub fn voltage_model(&self) -> &VoltageModel {
        &self.volt
    }

    /// Critical-path delay of a netlist at nominal voltage (ps).
    #[must_use]
    pub fn critical_delay_ps(&self, net: &Netlist) -> f64 {
        self.volt.path_delay_ps(net.critical_path(), 1.0)
    }

    /// Lowest voltage fraction at which `net` settles within `period_ps`
    /// (1.0 if no scaling is possible).
    #[must_use]
    pub fn min_voltage_fraction(&self, net: &Netlist, period_ps: f64) -> f64 {
        self.volt
            .min_voltage_fraction_for_path(net.critical_path(), period_ps)
            .unwrap_or(1.0)
    }

    /// Average switched capacitance per operation on `vectors` random
    /// operand pairs (relative units).
    #[must_use]
    pub fn average_capacitance(&self, net: &Netlist, bits: u32) -> f64 {
        let mut rng = SplitMix64::new(self.seed);
        let mut sim = EventSim::new(net);
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let mut total = 0.0;
        for _ in 0..self.vectors {
            let a = rng.next_u64() & mask;
            let b = rng.next_u64() & mask;
            total += sim
                .apply(&pack_inputs(bits, a, b, false))
                .switched_capacitance;
        }
        total / self.vectors as f64
    }

    /// Energy per operation (fJ) of a netlist at a voltage fraction, on
    /// random vectors.
    #[must_use]
    pub fn energy_per_op_fj(&self, net: &Netlist, bits: u32, v_frac: f64) -> f64 {
        self.volt
            .switching_energy_fj(self.average_capacitance(net, bits), v_frac)
    }

    /// One point of the slice design-space exploration for a 64-bit adder
    /// split into `width`-bit ripple slices.
    ///
    /// # Panics
    ///
    /// Panics if `width` does not divide 64.
    #[must_use]
    pub fn slice_point(&self, width: u32, period_ps: f64, reference_energy_fj: f64) -> SlicePoint {
        assert!(width >= 1 && 64 % width == 0, "width must divide 64");
        let slices = 64 / width;
        let slice = ripple_adder(width);
        let vmin = self.min_voltage_fraction(&slice, period_ps);
        let raw = self.energy_per_op_fj(&slice, width, vmin);
        let slice_energy = raw * (1.0 + self.cell_overhead_frac);
        let adder_energy = slice_energy * f64::from(slices);
        SlicePoint {
            width,
            slices,
            vmin_frac: vmin,
            slice_energy_fj: slice_energy,
            adder_energy_fj: adder_energy,
            savings_frac: 1.0 - adder_energy / reference_energy_fj,
        }
    }

    /// The full §V-B sweep over slice widths {2, 4, 8, 16, 32}.
    #[must_use]
    pub fn slice_dse(&self) -> Vec<SlicePoint> {
        let reference = reference_adder(64);
        let period = self.critical_delay_ps(&reference);
        let ref_energy = self.energy_per_op_fj(&reference, 64, 1.0);
        [2u32, 4, 8, 16, 32]
            .iter()
            .map(|&w| self.slice_point(w, period, ref_energy))
            .collect()
    }

    /// Builds the coefficient table consumed by the `st2-power` model.
    #[must_use]
    pub fn adder_energy_table(&self) -> AdderEnergyTable {
        let reference = reference_adder(64);
        let reference32 = reference_adder(32);
        let period = self.critical_delay_ps(&reference);
        let ref_energy = self.energy_per_op_fj(&reference, 64, 1.0);
        let ref32_energy = self.energy_per_op_fj(&reference32, 32, 1.0);
        let point = self.slice_point(8, period, ref_energy);
        let csla = crate::builder::carry_select_adder(64, 8);
        let csla_energy = self.energy_per_op_fj(&csla, 64, 1.0);
        // CRF row access: a 224-bit register-file row. Model per-bit access
        // capacitance as ~1.5 gate-cap units (wordline + bitline share).
        let crf_row_cap = 224.0 * 1.5;
        AdderEnergyTable {
            nominal_period_ps: period,
            reference_energy_fj: ref_energy,
            reference32_energy_fj: ref32_energy,
            slice_energy_fj: point.slice_energy_fj,
            slice_vmin_frac: point.vmin_frac,
            crf_read_energy_fj: self.volt.switching_energy_fj(crf_row_cap * 0.5, 1.0),
            crf_write_energy_fj: self.volt.switching_energy_fj(crf_row_cap * 0.7, 1.0),
            csla_energy_fj: csla_energy,
        }
    }
}

impl Default for Characterizer {
    fn default() -> Self {
        Self::default_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Characterizer {
        Characterizer::default_90nm().with_vectors(60)
    }

    #[test]
    fn eight_bit_slice_scales_deep() {
        // The paper's headline circuit result: 8-bit slices allow the
        // supply to scale to ~60 % of nominal within the nominal period.
        let ch = quick();
        let reference = reference_adder(64);
        let period = ch.critical_delay_ps(&reference);
        let slice = ripple_adder(8);
        let vmin = ch.min_voltage_fraction(&slice, period);
        assert!(
            (0.5..=0.72).contains(&vmin),
            "8-bit slice vmin {vmin} outside the plausible band around 0.6"
        );
    }

    #[test]
    fn slice_dse_shape() {
        // Wider slices scale less; savings should peak at a narrow width
        // and the 8-bit point must deliver substantial savings.
        let ch = quick();
        let points = ch.slice_dse();
        assert_eq!(points.len(), 5);
        let by_width = |w: u32| points.iter().find(|p| p.width == w).expect("width present");
        assert!(by_width(8).vmin_frac < by_width(32).vmin_frac);
        assert!(
            by_width(8).savings_frac > 0.6,
            "8-bit savings {} too low",
            by_width(8).savings_frac
        );
        for p in &points {
            assert!(p.savings_frac < 1.0);
            assert!(p.slices * p.width == 64);
        }
    }

    #[test]
    fn energy_table_consistency() {
        let t = quick().adder_energy_table();
        assert!(t.nominal_period_ps > 0.0);
        assert!(t.reference_energy_fj > t.reference32_energy_fj);
        assert!(t.slice_vmin_frac < 1.0);
        // First cycle of 8 slices must be far below the reference.
        assert!(t.st2_first_cycle_fj(8) < 0.5 * t.reference_energy_fj);
        // CSLA burns more than the reference (duplicated slices).
        assert!(t.csla_energy_fj > t.reference_energy_fj * 0.8);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
