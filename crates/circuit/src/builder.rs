//! Adder netlist constructions.
//!
//! Three designs matter to the paper's circuit study:
//!
//! * [`ripple_adder`] — the slice implementation (short chains, small).
//! * [`reference_adder`] — a 4-bit-group carry-lookahead design standing in
//!   for the Synopsys DesignWare "balanced" default adder the paper uses
//!   as its reference.
//! * [`carry_select_adder`] — CSLA: duplicated per-slice ripple adders with
//!   mux selection, the classic design ST² improves upon energy-wise.

use crate::netlist::{GateKind, NetId, Netlist};

/// Input-net convention for an `n`-bit adder: nets `0..n` are `a`,
/// `n..2n` are `b`, and net `2n` is the carry-in.
#[must_use]
pub fn adder_input_count(bits: u32) -> u32 {
    2 * bits + 1
}

/// A full adder; returns `(sum, cout)`.
fn full_adder(n: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let p = n.gate(GateKind::Xor2, &[a, b]);
    let s = n.gate(GateKind::Xor2, &[p, cin]);
    let g = n.gate(GateKind::And2, &[a, b]);
    let t = n.gate(GateKind::And2, &[p, cin]);
    let co = n.gate(GateKind::Or2, &[g, t]);
    (s, co)
}

/// An `bits`-wide ripple-carry adder. Outputs: `bits` sum nets then the
/// carry-out.
///
/// ```
/// use st2_circuit::builder::ripple_adder;
/// let a = ripple_adder(8);
/// assert_eq!(a.outputs().len(), 9);
/// ```
#[must_use]
pub fn ripple_adder(bits: u32) -> Netlist {
    assert!(bits >= 1, "adder must have at least one bit");
    let mut n = Netlist::new(adder_input_count(bits));
    let mut cin = 2 * bits; // carry-in net
    let mut sums = Vec::with_capacity(bits as usize);
    for i in 0..bits {
        let (s, co) = full_adder(&mut n, i, bits + i, cin);
        sums.push(s);
        cin = co;
    }
    for s in sums {
        n.mark_output(s);
    }
    n.mark_output(cin);
    n
}

/// A `bits`-wide two-level group carry-lookahead adder (4-bit lookahead
/// groups whose group generate/propagate signals are computed in parallel,
/// with the group-carry chain sequenced through `C_{j+1} = G_j | P_j·C_j`)
/// — a balanced speed/area design standing in for the DesignWare default
/// the paper synthesises as its reference. Outputs: `bits` sums then
/// carry-out.
#[must_use]
pub fn reference_adder(bits: u32) -> Netlist {
    assert!(bits >= 1, "adder must have at least one bit");
    let mut n = Netlist::new(adder_input_count(bits));
    let cin0 = 2 * bits;
    let mut sums = Vec::with_capacity(bits as usize);

    // Phase 1: all per-bit and group G/P signals, in parallel.
    struct Group {
        base: u32,
        width: u32,
        p: Vec<NetId>,
        g: Vec<NetId>,
        big_g: NetId,
        big_p: NetId,
    }
    let mut groups = Vec::new();
    let mut i = 0;
    while i < bits {
        let w = (bits - i).min(4);
        let mut p = Vec::new();
        let mut g = Vec::new();
        for k in 0..w {
            p.push(n.gate(GateKind::Xor2, &[i + k, bits + i + k]));
            g.push(n.gate(GateKind::And2, &[i + k, bits + i + k]));
        }
        // Group propagate: AND-tree of per-bit propagates.
        let mut big_p = p[0];
        for &pk in &p[1..] {
            big_p = n.gate(GateKind::And2, &[big_p, pk]);
        }
        // Group generate: G = g_{w-1} | p_{w-1}(g_{w-2} | p_{w-2}(...)).
        let mut big_g = g[0];
        for k in 1..w as usize {
            let t = n.gate(GateKind::And2, &[p[k], big_g]);
            big_g = n.gate(GateKind::Or2, &[g[k], t]);
        }
        groups.push(Group {
            base: i,
            width: w,
            p,
            g,
            big_g,
            big_p,
        });
        i += w;
    }

    // Phase 2: group-carry chain C_{j+1} = G_j | P_j·C_j.
    let mut group_cin = cin0;
    for grp in &groups {
        let _ = grp.base;
        // Phase 3 (per group): in-group carries ripple from the group's
        // carry-in; sums are p ^ c.
        let mut c = group_cin;
        for k in 0..grp.width as usize {
            let s = n.gate(GateKind::Xor2, &[grp.p[k], c]);
            sums.push(s);
            if k + 1 < grp.width as usize {
                let t = n.gate(GateKind::And2, &[grp.p[k], c]);
                c = n.gate(GateKind::Or2, &[grp.g[k], t]);
            }
        }
        let t = n.gate(GateKind::And2, &[grp.big_p, group_cin]);
        group_cin = n.gate(GateKind::Or2, &[grp.big_g, t]);
    }

    for s in sums {
        n.mark_output(s);
    }
    n.mark_output(group_cin);
    n
}

/// A carry-select adder: `slice_bits`-wide ripple slices, every slice above
/// the first duplicated for carry-in 0 and 1 with mux selection by the
/// rippled true carry. Outputs: `bits` sums then carry-out.
#[must_use]
pub fn carry_select_adder(bits: u32, slice_bits: u32) -> Netlist {
    assert!(slice_bits >= 1 && bits >= slice_bits, "invalid slicing");
    let mut n = Netlist::new(adder_input_count(bits));
    let cin0 = 2 * bits;
    let mut sums: Vec<NetId> = Vec::with_capacity(bits as usize);

    // Slice 0: plain ripple with the real carry-in.
    let mut carry = cin0;
    let first = slice_bits.min(bits);
    for i in 0..first {
        let (s, co) = full_adder(&mut n, i, bits + i, carry);
        sums.push(s);
        carry = co;
    }

    let mut base = first;
    while base < bits {
        let w = (bits - base).min(slice_bits);
        // Constant carry-in 0 / 1 paths. We synthesise constants from an
        // input: c0 = x & !x is avoided; instead use half-adder forms.
        // cin=0 path: bit0 is a half adder (s = a^b, co = a&b).
        let mut sums0 = Vec::new();
        let mut sums1 = Vec::new();
        let mut c0;
        let mut c1;
        {
            let (a0, b0) = (base, bits + base);
            let p0 = n.gate(GateKind::Xor2, &[a0, b0]);
            // cin = 0: s = p, co = a&b
            sums0.push(p0);
            c0 = n.gate(GateKind::And2, &[a0, b0]);
            // cin = 1: s = !p, co = a|b
            sums1.push(n.gate(GateKind::Not, &[p0]));
            c1 = n.gate(GateKind::Or2, &[a0, b0]);
        }
        for k in 1..w {
            let (ak, bk) = (base + k, bits + base + k);
            let (s0, co0) = full_adder(&mut n, ak, bk, c0);
            sums0.push(s0);
            c0 = co0;
            let (s1, co1) = full_adder(&mut n, ak, bk, c1);
            sums1.push(s1);
            c1 = co1;
        }
        // Select by the incoming (true) carry.
        for k in 0..w as usize {
            sums.push(n.gate(GateKind::Mux2, &[carry, sums0[k], sums1[k]]));
        }
        carry = n.gate(GateKind::Mux2, &[carry, c0, c1]);
        base += w;
    }

    for s in sums {
        n.mark_output(s);
    }
    n.mark_output(carry);
    n
}

/// Packs `(a, b, cin)` into the flat input vector of an adder netlist.
#[must_use]
pub fn pack_inputs(bits: u32, a: u64, b: u64, cin: bool) -> Vec<bool> {
    let mut v = Vec::with_capacity(adder_input_count(bits) as usize);
    for i in 0..bits {
        v.push(a >> i & 1 != 0);
    }
    for i in 0..bits {
        v.push(b >> i & 1 != 0);
    }
    v.push(cin);
    v
}

/// Unpacks an adder's output vector into `(sum, cout)`.
#[must_use]
pub fn unpack_outputs(bits: u32, outs: &[bool]) -> (u64, bool) {
    let mut sum = 0u64;
    for (i, &o) in outs[..bits as usize].iter().enumerate() {
        if o {
            sum |= 1 << i;
        }
    }
    (sum, outs[bits as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_adder(net: &Netlist, bits: u32) {
        let m = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let cases = [
            (0u64, 0u64, false),
            (m, 1, false),
            (m, m, true),
            (0x5a5a_5a5a_5a5a_5a5a & m, 0xa5a5_a5a5_a5a5_a5a5 & m, false),
            (123456789 & m, 987654321 & m, true),
        ];
        for (a, b, cin) in cases {
            let outs = net.eval(&pack_inputs(bits, a, b, cin));
            let (sum, cout) = unpack_outputs(bits, &outs);
            let wide = (a as u128) + (b as u128) + u128::from(cin);
            assert_eq!(
                sum,
                (wide as u64) & m,
                "{bits}-bit sum of {a:#x}+{b:#x}+{cin}"
            );
            assert_eq!(cout, wide >> bits & 1 == 1, "cout of {a:#x}+{b:#x}+{cin}");
        }
    }

    #[test]
    fn ripple_correct() {
        for bits in [1, 4, 8, 17, 64] {
            check_adder(&ripple_adder(bits), bits);
        }
    }

    #[test]
    fn reference_correct() {
        for bits in [4, 8, 15, 32, 64] {
            check_adder(&reference_adder(bits), bits);
        }
    }

    #[test]
    fn csla_correct() {
        for (bits, slice) in [(16, 4), (64, 8), (24, 8), (13, 5)] {
            check_adder(&carry_select_adder(bits, slice), bits);
        }
    }

    #[test]
    fn csla_exhaustive_small() {
        let net = carry_select_adder(6, 2);
        for a in 0..64u64 {
            for b in 0..64u64 {
                let outs = net.eval(&pack_inputs(6, a, b, false));
                let (sum, cout) = unpack_outputs(6, &outs);
                assert_eq!(sum, (a + b) & 63);
                assert_eq!(cout, a + b > 63);
            }
        }
    }

    #[test]
    fn slice_is_much_faster_than_reference() {
        // The premise of speculative voltage scaling: a short slice settles
        // far earlier than the wide reference adder.
        let slice = ripple_adder(8);
        let rf = reference_adder(64);
        assert!(
            rf.critical_path() as f64 >= 1.6 * slice.critical_path() as f64,
            "reference {} vs slice {}",
            rf.critical_path(),
            slice.critical_path()
        );
    }

    #[test]
    fn ripple_64_is_slower_than_reference_64() {
        // The reference must actually be a balanced (faster) design.
        assert!(reference_adder(64).critical_path() < ripple_adder(64).critical_path());
    }
}
