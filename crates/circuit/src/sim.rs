//! Event-driven unit-delay netlist simulation with transition counting.
//!
//! Unlike a zero-delay functional evaluation, an event-driven simulation
//! with per-gate delays reproduces *glitching*: when a late-arriving carry
//! ripples through an adder, downstream gates switch several times per
//! operation, each transition costing `C·V²` energy. Short predicted-carry
//! slices glitch far less than a wide adder — a real part of the sliced
//! design's energy advantage, and the reason the paper simulates its
//! netlists in analog mode rather than counting functional toggles.

use crate::netlist::Netlist;
use std::collections::VecDeque;

/// Per-operation simulation report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepReport {
    /// Total output transitions (including glitches).
    pub toggles: u64,
    /// Capacitance-weighted transitions (relative energy units; multiply by
    /// the voltage model's `C·V²` factor for joules).
    pub switched_capacitance: f64,
    /// Time of the last transition (gate-delay units) — the operation's
    /// dynamic settling delay.
    pub settle_time: u32,
}

/// A stateful event-driven simulator for one netlist.
///
/// ```
/// use st2_circuit::{builder, sim::EventSim};
/// let adder = builder::ripple_adder(8);
/// let mut sim = EventSim::new(&adder);
/// let r = sim.apply(&builder::pack_inputs(8, 0xff, 0x01, false));
/// assert!(r.toggles > 0);
/// // The long carry ripple settles late:
/// assert!(r.settle_time >= 14);
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    net: &'a Netlist,
    values: Vec<bool>,
    /// net -> gate indices it feeds
    fanout: Vec<Vec<u32>>,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator initialised to the all-zero-input steady state.
    #[must_use]
    pub fn new(net: &'a Netlist) -> Self {
        let mut fanout = vec![Vec::new(); net.n_nets() as usize];
        for (gi, g) in net.gates().iter().enumerate() {
            for &input in &g.inputs[..g.kind.arity()] {
                fanout[input as usize].push(gi as u32);
            }
        }
        // Steady state for all-zero inputs, computed functionally (the
        // gates are stored in topological order).
        let mut values = vec![false; net.n_nets() as usize];
        for (gi, g) in net.gates().iter().enumerate() {
            let mut ins = [false; 3];
            for (k, &n) in g.inputs[..g.kind.arity()].iter().enumerate() {
                ins[k] = values[n as usize];
            }
            values[net.n_inputs() as usize + gi] = g.kind.eval(ins);
        }
        EventSim {
            net,
            values,
            fanout,
        }
    }

    /// Current value of a net.
    #[must_use]
    pub fn value(&self, net: u32) -> bool {
        self.values[net as usize]
    }

    /// Current output values.
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        self.net
            .outputs()
            .iter()
            .map(|&n| self.values[n as usize])
            .collect()
    }

    /// Applies a new input vector and propagates to quiescence, counting
    /// every transition.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches the netlist.
    pub fn apply(&mut self, inputs: &[bool]) -> StepReport {
        assert_eq!(
            inputs.len(),
            self.net.n_inputs() as usize,
            "input width mismatch"
        );
        // Time wheel: events[t] = gates to (re)evaluate at time t.
        let horizon = (self.net.critical_path() as usize + 2).max(4);
        let mut wheel: Vec<VecDeque<u32>> = vec![VecDeque::new(); horizon + 1];
        let mut report = StepReport::default();

        // Input changes at t = 0.
        for (i, &v) in inputs.iter().enumerate() {
            if self.values[i] != v {
                self.values[i] = v;
                for &gi in &self.fanout[i] {
                    let d = self.net.gates()[gi as usize].kind.delay() as usize;
                    wheel[d].push_back(gi);
                }
            }
        }

        for t in 0..=horizon {
            while let Some(gi) = {
                // Split borrow: take from wheel[t] without holding the Vec.
                let slot = &mut wheel[t];
                slot.pop_front()
            } {
                let g = self.net.gates()[gi as usize];
                let mut ins = [false; 3];
                for (k, &n) in g.inputs[..g.kind.arity()].iter().enumerate() {
                    ins[k] = self.values[n as usize];
                }
                let new = g.kind.eval(ins);
                let out_net = self.net.n_inputs() as usize + gi as usize;
                if self.values[out_net] != new {
                    self.values[out_net] = new;
                    report.toggles += 1;
                    report.switched_capacitance += g.kind.capacitance();
                    report.settle_time = report.settle_time.max(t as u32);
                    for &succ in &self.fanout[out_net] {
                        let d = self.net.gates()[succ as usize].kind.delay() as usize;
                        let when = (t + d).min(horizon);
                        wheel[when].push_back(succ);
                    }
                }
            }
        }
        debug_assert_eq!(
            self.outputs(),
            self.net.eval(inputs),
            "event simulation diverged from functional evaluation"
        );
        report
    }

    /// Average capacitance switched per operation over a vector stream.
    pub fn average_switched_capacitance<I>(&mut self, vectors: I) -> f64
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        let mut total = 0.0;
        let mut n = 0u64;
        for v in vectors {
            total += self.apply(&v).switched_capacitance;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{pack_inputs, reference_adder, ripple_adder, unpack_outputs};

    #[test]
    fn event_sim_matches_functional_eval() {
        let adder = ripple_adder(16);
        let mut sim = EventSim::new(&adder);
        let mut x = 0x9e37u64;
        for _ in 0..200 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
            let a = x & 0xffff;
            let b = x >> 16 & 0xffff;
            let ins = pack_inputs(16, a, b, x >> 63 != 0);
            let _ = sim.apply(&ins);
            let (sum, _) = unpack_outputs(16, &sim.outputs());
            assert_eq!(sum, (a + b + (x >> 63)) & 0xffff);
        }
    }

    #[test]
    fn long_carry_chains_glitch_more() {
        // 0 -> (0xffff + 1): the carry ripples through every bit.
        let adder = ripple_adder(16);
        let mut sim = EventSim::new(&adder);
        let quiet = sim.apply(&pack_inputs(16, 1, 2, false));
        let mut sim2 = EventSim::new(&adder);
        let ripple = sim2.apply(&pack_inputs(16, 0xffff, 1, false));
        assert!(
            ripple.toggles > quiet.toggles,
            "full ripple {} should out-toggle quiet add {}",
            ripple.toggles,
            quiet.toggles
        );
        assert!(ripple.settle_time > quiet.settle_time);
    }

    #[test]
    fn idempotent_input_produces_no_toggles() {
        let adder = ripple_adder(8);
        let mut sim = EventSim::new(&adder);
        let ins = pack_inputs(8, 0x12, 0x34, false);
        let _ = sim.apply(&ins);
        let again = sim.apply(&ins);
        assert_eq!(again.toggles, 0);
        assert_eq!(again.switched_capacitance, 0.0);
    }

    #[test]
    fn settle_time_bounded_by_critical_path() {
        let adder = reference_adder(64);
        let cp = adder.critical_path();
        let mut sim = EventSim::new(&adder);
        let mut x = 123456789u64;
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = sim.apply(&pack_inputs(64, x, x.rotate_left(17), false));
            assert!(
                r.settle_time <= cp,
                "settle {} > critical path {cp}",
                r.settle_time
            );
        }
    }

    #[test]
    fn average_capacitance_over_stream() {
        let adder = ripple_adder(8);
        let mut sim = EventSim::new(&adder);
        let avg = sim.average_switched_capacitance(
            (0..50u64).map(|i| pack_inputs(8, (i * 7) & 0xff, (i * 13) & 0xff, false)),
        );
        assert!(avg > 0.0);
    }
}
