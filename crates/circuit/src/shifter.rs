//! Level-shifter overhead model (§VI).
//!
//! ST² slices run in a scaled-down voltage domain, so every adder input
//! and output bit crosses a voltage boundary through a level shifter. The
//! paper bounds the overhead with published figures: 2.8 µm² per shifter
//! in 45 nm [Liu et al., ISCAS'15], and 1.38 fJ per transition / 307 nW
//! static / 20.8 ps worst-case delay for 16 nm FinFET shifters
//! [Shapiro & Friedman, TVLSI'16]. This module reproduces that arithmetic
//! for a TITAN-V-class chip.

use serde::{Deserialize, Serialize};

/// Per-shifter characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelShifterModel {
    /// Cell area (µm², 45 nm figure — conservatively unscaled).
    pub area_um2: f64,
    /// Dynamic energy per output transition (fJ).
    pub energy_per_transition_fj: f64,
    /// Static power per shifter (nW).
    pub static_power_nw: f64,
    /// Worst-case propagation delay per transition (ps).
    pub delay_ps: f64,
}

impl LevelShifterModel {
    /// The constants the paper cites (\[20\] for area, \[21\] for
    /// energy/static/delay).
    #[must_use]
    pub fn paper_constants() -> Self {
        LevelShifterModel {
            area_um2: 2.8,
            energy_per_transition_fj: 1.38,
            static_power_nw: 307.0,
            delay_ps: 20.8,
        }
    }
}

impl Default for LevelShifterModel {
    fn default() -> Self {
        Self::paper_constants()
    }
}

/// How many shifter-protected adders of each width a chip carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderPopulation {
    /// Streaming multiprocessors on the chip.
    pub sms: u32,
    /// 32-bit integer ALU adders per SM.
    pub alu_per_sm: u32,
    /// FP32 units per SM (24-bit mantissa adders).
    pub fpu_per_sm: u32,
    /// FP64 units per SM (53-bit mantissa adders).
    pub dpu_per_sm: u32,
}

impl AdderPopulation {
    /// NVIDIA TITAN V (Volta GV100): 80 SMs × (64 ALU + 64 FPU + 32 DPU).
    #[must_use]
    pub fn titan_v() -> Self {
        AdderPopulation {
            sms: 80,
            alu_per_sm: 64,
            fpu_per_sm: 64,
            dpu_per_sm: 32,
        }
    }

    /// Level shifters per adder: both input operands plus the output for
    /// every bit of the adder's datapath.
    #[must_use]
    pub fn shifters_per_sm(&self) -> u64 {
        let per_adder = |bits: u64| 3 * bits;
        u64::from(self.alu_per_sm) * per_adder(32)
            + u64::from(self.fpu_per_sm) * per_adder(24)
            + u64::from(self.dpu_per_sm) * per_adder(53)
    }

    /// Total level shifters on the chip.
    #[must_use]
    pub fn total_shifters(&self) -> u64 {
        u64::from(self.sms) * self.shifters_per_sm()
    }
}

/// Chip-level level-shifter overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShifterOverheads {
    /// Shifters on the chip.
    pub count: u64,
    /// Total area (mm²).
    pub area_mm2: f64,
    /// Area as a fraction of the die.
    pub area_frac_of_die: f64,
    /// Total static power (W).
    pub static_power_w: f64,
    /// Worst-case dynamic power (W) under the paper's pessimistic
    /// assumption that *every* bit of every adder operation transitions.
    pub worst_case_dynamic_w: f64,
    /// Added delay per crossing (ps).
    pub delay_ps: f64,
}

/// Computes chip-level overheads.
///
/// `adder_ops_per_second` is the chip-wide rate of operations entering
/// shifted adders (for the pessimistic all-bits-toggle dynamic bound).
/// `die_area_mm2` defaults to the TITAN V's 815 mm² when computing the
/// area fraction.
#[must_use]
pub fn chip_overheads(
    model: &LevelShifterModel,
    population: &AdderPopulation,
    adder_ops_per_second: f64,
    die_area_mm2: f64,
) -> ShifterOverheads {
    let count = population.total_shifters();
    let area_mm2 = count as f64 * model.area_um2 / 1e6;
    let static_power_w = count as f64 * model.static_power_nw * 1e-9;
    // Pessimistic dynamic bound: every shifter of an *average* adder
    // transitions once per operation. Ops/s × shifters-per-adder ×
    // energy/transition. Average shifters per adder over the population:
    let adders = f64::from(population.sms)
        * f64::from(population.alu_per_sm + population.fpu_per_sm + population.dpu_per_sm);
    let avg_shifters_per_adder = count as f64 / adders;
    let worst_case_dynamic_w =
        adder_ops_per_second * avg_shifters_per_adder * model.energy_per_transition_fj * 1e-15;
    ShifterOverheads {
        count,
        area_mm2,
        area_frac_of_die: area_mm2 / die_area_mm2,
        static_power_w,
        worst_case_dynamic_w,
        delay_ps: model.delay_ps,
    }
}

/// The TITAN V die area used for the paper's 0.68 % figure.
pub const TITAN_V_DIE_MM2: f64 = 815.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_area_bound() {
        // Paper: "these level shifters in total occupy less than 5.5 mm²,
        // which ... is 0.68 % of the 815 mm² chip area."
        let o = chip_overheads(
            &LevelShifterModel::paper_constants(),
            &AdderPopulation::titan_v(),
            0.0,
            TITAN_V_DIE_MM2,
        );
        assert!(
            o.area_mm2 < 5.5,
            "area {} must be below 5.5 mm²",
            o.area_mm2
        );
        assert!(o.area_frac_of_die < 0.0068 + 1e-4);
    }

    #[test]
    fn reproduces_paper_static_power_bound() {
        // Paper: total static power "is only 0.6 W".
        let o = chip_overheads(
            &LevelShifterModel::paper_constants(),
            &AdderPopulation::titan_v(),
            0.0,
            TITAN_V_DIE_MM2,
        );
        assert!(
            o.static_power_w < 0.6,
            "static {} must be below 0.6 W",
            o.static_power_w
        );
        assert!(o.static_power_w > 0.2, "sanity: non-trivial static power");
    }

    #[test]
    fn shifter_counts() {
        let p = AdderPopulation::titan_v();
        // 64×96 + 64×72 + 32×159 = 15840 per SM.
        assert_eq!(p.shifters_per_sm(), 15840);
        assert_eq!(p.total_shifters(), 15840 * 80);
    }

    #[test]
    fn dynamic_bound_scales_with_rate() {
        let m = LevelShifterModel::paper_constants();
        let p = AdderPopulation::titan_v();
        let lo = chip_overheads(&m, &p, 1e9, TITAN_V_DIE_MM2);
        let hi = chip_overheads(&m, &p, 2e9, TITAN_V_DIE_MM2);
        assert!((hi.worst_case_dynamic_w / lo.worst_case_dynamic_w - 2.0).abs() < 1e-9);
    }
}
