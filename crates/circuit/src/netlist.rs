//! Primitive-gate netlists.
//!
//! A [`Netlist`] is a DAG of two/three-input gates over boolean nets.
//! Net ids `0..n_inputs` are primary inputs; every gate drives exactly one
//! new net (`n_inputs + gate_index`). This is deliberately simple — enough
//! to express adders and their selection logic — while supporting the two
//! analyses the characterisation needs: static critical-path extraction
//! and event-driven transition counting.

use serde::{Deserialize, Serialize};

/// A net identifier.
pub type NetId = u32;

/// Primitive gate kinds with their relative delay (gate-delay units) and
/// switching capacitance (relative units), loosely following a 90 nm
/// standard-cell library's ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer — inputs `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
}

impl GateKind {
    /// Propagation delay in gate-delay units.
    #[must_use]
    pub fn delay(self) -> u32 {
        match self {
            GateKind::Not => 1,
            GateKind::And2 | GateKind::Or2 | GateKind::Nand2 | GateKind::Nor2 => 1,
            GateKind::Xor2 | GateKind::Xnor2 | GateKind::Mux2 => 2,
        }
    }

    /// Relative switching capacitance (energy per output transition).
    #[must_use]
    pub fn capacitance(self) -> f64 {
        match self {
            GateKind::Not => 1.0,
            GateKind::Nand2 | GateKind::Nor2 => 1.6,
            GateKind::And2 | GateKind::Or2 => 2.0,
            GateKind::Xor2 | GateKind::Xnor2 => 3.0,
            GateKind::Mux2 => 3.2,
        }
    }

    /// Number of inputs.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Not => 1,
            GateKind::Mux2 => 3,
            _ => 2,
        }
    }

    /// Evaluates the gate.
    #[must_use]
    pub fn eval(self, ins: [bool; 3]) -> bool {
        let [a, b, c] = ins;
        match self {
            GateKind::Not => !a,
            GateKind::And2 => a && b,
            GateKind::Or2 => a || b,
            GateKind::Nand2 => !(a && b),
            GateKind::Nor2 => !(a || b),
            GateKind::Xor2 => a ^ b,
            GateKind::Xnor2 => !(a ^ b),
            GateKind::Mux2 => {
                if a {
                    c
                } else {
                    b
                }
            }
        }
    }
}

/// One gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Gate kind.
    pub kind: GateKind,
    /// Input nets (`arity()` of them are meaningful).
    pub inputs: [NetId; 3],
}

/// A combinational netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    n_inputs: u32,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates a netlist with `n_inputs` primary inputs.
    #[must_use]
    pub fn new(n_inputs: u32) -> Self {
        Netlist {
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn n_inputs(&self) -> u32 {
        self.n_inputs
    }

    /// Number of gates.
    #[must_use]
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total nets (inputs + gate outputs).
    #[must_use]
    pub fn n_nets(&self) -> u32 {
        self.n_inputs + self.gates.len() as u32
    }

    /// The gates, in topological order by construction.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The designated output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Adds a gate and returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if any input net does not exist yet (the netlist must stay a
    /// topologically ordered DAG).
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "wrong arity for {kind:?}");
        let next = self.n_nets();
        let mut padded = [0; 3];
        for (i, &n) in inputs.iter().enumerate() {
            assert!(n < next, "gate input {n} references a future net");
            padded[i] = n;
        }
        self.gates.push(Gate {
            kind,
            inputs: padded,
        });
        next
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        assert!(net < self.n_nets(), "output net does not exist");
        self.outputs.push(net);
    }

    /// Total switching capacitance of all gates (relative units) — used
    /// for leakage (∝ device count) estimates.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.capacitance()).sum()
    }

    /// Static critical path in gate-delay units (longest weighted path
    /// from any input to any net).
    #[must_use]
    pub fn critical_path(&self) -> u32 {
        let mut arrival = vec![0u32; self.n_nets() as usize];
        let mut worst = 0;
        for (i, g) in self.gates.iter().enumerate() {
            let at = g.inputs[..g.kind.arity()]
                .iter()
                .map(|&n| arrival[n as usize])
                .max()
                .unwrap_or(0)
                + g.kind.delay();
            arrival[self.n_inputs as usize + i] = at;
            worst = worst.max(at);
        }
        worst
    }

    /// Zero-delay functional evaluation (reference semantics for tests).
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs as usize, "input width mismatch");
        let mut vals = vec![false; self.n_nets() as usize];
        vals[..inputs.len()].copy_from_slice(inputs);
        for (i, g) in self.gates.iter().enumerate() {
            let mut ins = [false; 3];
            for (k, &n) in g.inputs[..g.kind.arity()].iter().enumerate() {
                ins[k] = vals[n as usize];
            }
            vals[self.n_inputs as usize + i] = g.kind.eval(ins);
        }
        self.outputs.iter().map(|&n| vals[n as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval_full_adder() {
        // sum = a ^ b ^ cin; cout = ab | cin(a ^ b)
        let mut n = Netlist::new(3);
        let (a, b, cin) = (0, 1, 2);
        let p = n.gate(GateKind::Xor2, &[a, b]);
        let s = n.gate(GateKind::Xor2, &[p, cin]);
        let g = n.gate(GateKind::And2, &[a, b]);
        let t = n.gate(GateKind::And2, &[p, cin]);
        let co = n.gate(GateKind::Or2, &[g, t]);
        n.mark_output(s);
        n.mark_output(co);
        for bits in 0..8u32 {
            let ins = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let out = n.eval(&ins);
            let total = ins.iter().filter(|&&x| x).count();
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "cout for {bits:03b}");
        }
        // Critical path: xor(2) -> and(1) -> or(1) = 4.
        assert_eq!(n.critical_path(), 4);
        assert_eq!(n.n_gates(), 5);
    }

    #[test]
    fn mux_semantics() {
        let mut n = Netlist::new(3);
        let m = n.gate(GateKind::Mux2, &[0, 1, 2]); // sel=0, a=1, b=2
        n.mark_output(m);
        assert_eq!(n.eval(&[false, true, false]), vec![true]); // sel 0 -> a
        assert_eq!(n.eval(&[true, true, false]), vec![false]); // sel 1 -> b
    }

    #[test]
    #[should_panic(expected = "future net")]
    fn forward_reference_rejected() {
        let mut n = Netlist::new(1);
        let _ = n.gate(GateKind::Not, &[5]);
    }
}
