//! # Gate-level circuit substrate for ST² adders
//!
//! The paper characterises its adders with a commercial flow (Synopsys
//! Design Compiler / IC Compiler / VCS-MX / HSpice on the SAED 90 nm
//! library). This crate rebuilds the *methodology* from scratch:
//!
//! 1. **Netlists** of primitive gates ([`netlist`], [`builder`]) for the
//!    reference adder (a lookahead design standing in for the DesignWare
//!    balanced adder), ripple slices, and carry-select compositions.
//! 2. **Event-driven unit-delay simulation** ([`sim`]) that counts every
//!    output transition — including glitches from late-arriving carries,
//!    which is where sliced adders save switching energy beyond the
//!    voltage scaling itself.
//! 3. **Voltage/delay/energy models** ([`volt`]): alpha-power-law delay
//!    scaling and `C·V²` switching energy, used to find the lowest supply
//!    voltage at which a slice still fits in the nominal clock period.
//! 4. **Characterisation** ([`characterize`]): the slice-bitwidth
//!    design-space exploration of §V-B (8-bit slices ⇒ Vdd ≈ 60 % of
//!    nominal ⇒ 75–87 % per-adder energy-saving potential) and the energy
//!    coefficients consumed by the `st2-power` model.
//! 5. **Level shifters** ([`shifter`]): the area/energy/delay overhead
//!    model of §VI using the constants the paper cites.
//!
//! ```
//! use st2_circuit::{builder, characterize::Characterizer};
//! let ch = Characterizer::default_90nm();
//! let slice = builder::ripple_adder(8);
//! let reference = builder::reference_adder(64);
//! let period = ch.critical_delay_ps(&reference);
//! let vmin = ch.min_voltage_fraction(&slice, period);
//! assert!(vmin < 0.8, "an 8-bit slice must scale well below nominal");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod characterize;
pub mod netlist;
pub mod shifter;
pub mod sim;
pub mod volt;

pub use characterize::{AdderEnergyTable, Characterizer, SlicePoint};
pub use netlist::{GateKind, Netlist};
pub use shifter::LevelShifterModel;
pub use volt::VoltageModel;
