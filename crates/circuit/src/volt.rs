//! Supply-voltage scaling: alpha-power-law delay and `C·V²` energy.
//!
//! Speculative adders gain their power advantage by running each slice at
//! the *lowest* supply voltage at which the slice still settles within the
//! nominal clock period (defined by the reference adder at nominal
//! voltage). Delay grows as voltage falls following the alpha-power law
//! `t(V) ∝ V / (V − V_th)^α` (Rabaey); switching energy falls
//! quadratically, `E ∝ C·V²` — the "quadratic power savings" of §II-B.

use serde::{Deserialize, Serialize};

/// Technology voltage/delay/energy model (defaults loosely calibrated to a
/// 90 nm library, matching the paper's SAED 90 nm flow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageModel {
    /// Nominal supply voltage (V).
    pub vnom: f64,
    /// Threshold voltage (V).
    pub vth: f64,
    /// Velocity-saturation exponent of the alpha-power law.
    pub alpha: f64,
    /// Delay of one gate-delay unit at `vnom` (ps).
    pub unit_delay_ps: f64,
    /// Energy per unit of switched capacitance at `vnom` (fJ).
    pub unit_energy_fj: f64,
    /// Leakage power per unit of gate capacitance at `vnom` (nW).
    pub unit_leakage_nw: f64,
}

impl VoltageModel {
    /// A 90 nm-like default: 1.2 V nominal, 0.35 V threshold, α = 1.4.
    #[must_use]
    pub fn saed90_like() -> Self {
        VoltageModel {
            vnom: 1.2,
            vth: 0.35,
            alpha: 1.4,
            unit_delay_ps: 35.0,
            unit_energy_fj: 1.1,
            unit_leakage_nw: 0.45,
        }
    }

    /// Delay multiplier at `v_frac · vnom` relative to nominal.
    ///
    /// # Panics
    ///
    /// Panics if the requested voltage is at or below the threshold
    /// voltage (the circuit would not switch).
    #[must_use]
    pub fn delay_factor(&self, v_frac: f64) -> f64 {
        let v = v_frac * self.vnom;
        assert!(
            v > self.vth,
            "supply {v:.3} V is not above threshold {:.3} V",
            self.vth
        );
        let nominal = self.vnom / (self.vnom - self.vth).powf(self.alpha);
        let scaled = v / (v - self.vth).powf(self.alpha);
        scaled / nominal
    }

    /// Absolute delay (ps) of a path of `units` gate-delay units at
    /// `v_frac · vnom`.
    #[must_use]
    pub fn path_delay_ps(&self, units: u32, v_frac: f64) -> f64 {
        f64::from(units) * self.unit_delay_ps * self.delay_factor(v_frac)
    }

    /// Switching energy (fJ) for `switched_capacitance` relative units at
    /// `v_frac · vnom`: quadratic in voltage.
    #[must_use]
    pub fn switching_energy_fj(&self, switched_capacitance: f64, v_frac: f64) -> f64 {
        switched_capacitance * self.unit_energy_fj * v_frac * v_frac
    }

    /// Leakage power (nW) of a block with `total_capacitance` units at
    /// `v_frac · vnom` (roughly linear in V in the near-threshold region).
    #[must_use]
    pub fn leakage_nw(&self, total_capacitance: f64, v_frac: f64) -> f64 {
        total_capacitance * self.unit_leakage_nw * v_frac
    }

    /// The lowest voltage fraction (granularity 0.005) at which a path of
    /// `units` gate-delay units still fits within `period_ps`, or `None`
    /// if even nominal voltage is too slow.
    #[must_use]
    pub fn min_voltage_fraction_for_path(&self, units: u32, period_ps: f64) -> Option<f64> {
        if self.path_delay_ps(units, 1.0) > period_ps {
            return None;
        }
        // Delay is monotone decreasing in voltage: scan downward.
        let floor = (self.vth / self.vnom) + 0.02;
        let mut best = 1.0;
        let mut v = 1.0;
        while v - 0.005 > floor {
            v -= 0.005;
            if self.path_delay_ps(units, v) <= period_ps {
                best = v;
            } else {
                break;
            }
        }
        Some(best)
    }
}

impl Default for VoltageModel {
    fn default() -> Self {
        Self::saed90_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_factor_is_one() {
        let m = VoltageModel::saed90_like();
        assert!((m.delay_factor(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_grows_as_voltage_falls() {
        let m = VoltageModel::saed90_like();
        let mut prev = m.delay_factor(1.0);
        for v in [0.9, 0.8, 0.7, 0.6, 0.5] {
            let f = m.delay_factor(v);
            assert!(f > prev, "delay factor must grow: {f} at {v}");
            prev = f;
        }
    }

    #[test]
    fn energy_is_quadratic() {
        let m = VoltageModel::saed90_like();
        let full = m.switching_energy_fj(10.0, 1.0);
        let half = m.switching_energy_fj(10.0, 0.5);
        assert!((half / full - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_voltage_monotone_in_slack() {
        let m = VoltageModel::saed90_like();
        let tight = m
            .min_voltage_fraction_for_path(30, m.path_delay_ps(30, 1.0) * 1.01)
            .expect("fits at nominal");
        let loose = m
            .min_voltage_fraction_for_path(10, m.path_delay_ps(30, 1.0) * 1.01)
            .expect("fits at nominal");
        assert!(loose < tight, "more slack must allow lower voltage");
        assert!(tight <= 1.0 && loose > m.vth / m.vnom);
    }

    #[test]
    fn impossible_period_is_none() {
        let m = VoltageModel::saed90_like();
        assert!(m.min_voltage_fraction_for_path(100, 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "not above threshold")]
    fn below_threshold_panics() {
        let m = VoltageModel::saed90_like();
        let _ = m.delay_factor(0.2);
    }
}
