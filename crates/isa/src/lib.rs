//! # A miniature SIMT ISA (PTX substitute)
//!
//! The paper's workloads are CUDA kernels compiled to PTX and executed on
//! GPGPU-Sim. This crate provides the equivalent substrate for the
//! reproduction: a small data-parallel instruction set, a structured
//! kernel-builder DSL that computes SIMT reconvergence points, and typed
//! memory images.
//!
//! What matters for ST² is that kernels produce *real operand streams* —
//! loop iterators, array indices, accumulating sums — because the paper's
//! entire mechanism rests on the spatio-temporal correlation of those
//! values. The ISA therefore keeps full data fidelity (64-bit integer,
//! IEEE f32/f64) while staying small enough to interpret quickly.
//!
//! ```
//! use st2_isa::{KernelBuilder, Operand, Special};
//!
//! // result[gtid] = gtid * 2 + 1  for every thread
//! let mut k = KernelBuilder::new("double_plus_one");
//! let tid = k.special(Special::GlobalTid);
//! let v = k.reg();
//! k.imul(v, tid.into(), Operand::Imm(2));
//! k.iadd(v, v.into(), Operand::Imm(1));
//! let addr = k.reg();
//! k.imul(addr, tid.into(), Operand::Imm(8));
//! k.st_global_u64(v.into(), addr, 0);
//! let program = k.finish();
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod disasm;
pub mod inst;
pub mod mem;
pub mod program;

pub use builder::KernelBuilder;
pub use inst::{
    BranchCond, FloatOp, FloatWidth, Inst, InstClass, IntOp, MemWidth, NumType, Operand, Reg,
    SfuOp, Space, Special,
};
pub use mem::MemImage;
pub use program::{LaunchConfig, Program, ValidateProgramError};
