//! Program disassembly: human-readable listings of kernel programs.
//!
//! The builder DSL generates code the author never sees; when a kernel
//! misbehaves (or when correlating the Fig. 2 trace PCs with source
//! constructs), a listing with branch annotations is the first thing a
//! user reaches for.

use crate::inst::{
    FloatOp, FloatWidth, Inst, IntOp, MemWidth, NumType, Operand, SfuOp, Space, Special,
};
use crate::program::Program;
use std::fmt::Write as _;

fn op(o: Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => {
            if (-4096..=4096).contains(&v) {
                format!("{v}")
            } else {
                format!("{v:#x}")
            }
        }
    }
}

fn int_op_name(o: IntOp) -> &'static str {
    match o {
        IntOp::Add => "add",
        IntOp::Sub => "sub",
        IntOp::Mul => "mul",
        IntOp::Div => "div",
        IntOp::Rem => "rem",
        IntOp::Min => "min",
        IntOp::Max => "max",
        IntOp::And => "and",
        IntOp::Or => "or",
        IntOp::Xor => "xor",
        IntOp::Shl => "shl",
        IntOp::Shr => "shr",
        IntOp::Sra => "sra",
        IntOp::SetLt => "set.lt",
        IntOp::SetLe => "set.le",
        IntOp::SetEq => "set.eq",
        IntOp::SetNe => "set.ne",
    }
}

fn float_op_name(o: FloatOp) -> &'static str {
    match o {
        FloatOp::Add => "add",
        FloatOp::Sub => "sub",
        FloatOp::Mul => "mul",
        FloatOp::Div => "div",
        FloatOp::Min => "min",
        FloatOp::Max => "max",
        FloatOp::SetLt => "set.lt",
        FloatOp::SetLe => "set.le",
        FloatOp::SetEq => "set.eq",
    }
}

fn width_tag(w: FloatWidth) -> &'static str {
    match w {
        FloatWidth::F32 => "f32",
        FloatWidth::F64 => "f64",
    }
}

fn space_tag(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

fn mem_tag(w: MemWidth) -> &'static str {
    match w {
        MemWidth::W4 => "u32",
        MemWidth::W8 => "u64",
    }
}

fn num_tag(t: NumType) -> &'static str {
    match t {
        NumType::I64 => "i64",
        NumType::F32 => "f32",
        NumType::F64 => "f64",
    }
}

fn special_tag(s: Special) -> &'static str {
    match s {
        Special::Tid => "%tid",
        Special::CtaId => "%ctaid",
        Special::NTid => "%ntid",
        Special::NCta => "%nctaid",
        Special::LaneId => "%laneid",
        Special::WarpId => "%warpid",
        Special::GlobalTid => "%gtid",
    }
}

/// Renders one instruction (without its PC).
#[must_use]
pub fn disasm_inst(inst: &Inst) -> String {
    match *inst {
        Inst::Int { op: o, d, a, b } => {
            format!("{}.i64   {d}, {}, {}", int_op_name(o), op(a), op(b))
        }
        Inst::Float { op: o, w, d, a, b } => {
            format!(
                "{}.{}   {d}, {}, {}",
                float_op_name(o),
                width_tag(w),
                op(a),
                op(b)
            )
        }
        Inst::Fma { w, d, a, b, c } => {
            format!(
                "fma.{}   {d}, {}, {}, {}",
                width_tag(w),
                op(a),
                op(b),
                op(c)
            )
        }
        Inst::Sfu { op: o, d, a } => {
            let name = match o {
                SfuOp::Sqrt => "sqrt",
                SfuOp::Exp => "exp",
                SfuOp::Log => "log",
                SfuOp::Sin => "sin",
                SfuOp::Cos => "cos",
                SfuOp::Rcp => "rcp",
                SfuOp::Rsqrt => "rsqrt",
            };
            format!("{name}.sfu  {d}, {}", op(a))
        }
        Inst::Cvt { d, a, from, to } => {
            format!("cvt.{}.{} {d}, {}", num_tag(to), num_tag(from), op(a))
        }
        Inst::Ld {
            d,
            addr,
            offset,
            space,
            width,
        } => format!(
            "ld.{}.{} {d}, [{addr}{offset:+}]",
            space_tag(space),
            mem_tag(width)
        ),
        Inst::St {
            v,
            addr,
            offset,
            space,
            width,
        } => format!(
            "st.{}.{} [{addr}{offset:+}], {}",
            space_tag(space),
            mem_tag(width),
            op(v)
        ),
        Inst::Bra {
            cond,
            target,
            reconv,
        } => match cond {
            None => format!("bra      -> {target}"),
            Some(c) => format!(
                "bra.{}  {} -> {target} (reconv {reconv})",
                if c.if_nonzero { "nz" } else { "z " },
                c.reg
            ),
        },
        Inst::Bar => "bar.sync".to_string(),
        Inst::Exit => "exit".to_string(),
        Inst::Mov { d, a } => format!("mov      {d}, {}", op(a)),
        Inst::Special { d, s } => format!("mov      {d}, {}", special_tag(s)),
    }
}

/// Renders a whole program as a listing with PCs and branch-target
/// arrows.
///
/// ```
/// use st2_isa::{disasm::disasm, KernelBuilder, Operand};
/// let mut k = KernelBuilder::new("demo");
/// let r = k.reg();
/// k.iadd(r, r.into(), Operand::Imm(1));
/// let text = disasm(&k.finish());
/// assert!(text.contains("add.i64"));
/// assert!(text.contains("exit"));
/// ```
#[must_use]
pub fn disasm(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kernel {} — {} insts, {} regs, {} B shared",
        program.name(),
        program.len(),
        program.num_regs(),
        program.shared_bytes()
    );
    // Mark branch targets for readability.
    let mut is_target = vec![false; program.len() as usize + 1];
    for inst in program.insts() {
        if let Inst::Bra { target, .. } = inst {
            if (*target as usize) < is_target.len() {
                is_target[*target as usize] = true;
            }
        }
    }
    for (pc, inst) in program.insts().iter().enumerate() {
        let mark = if is_target[pc] { ">" } else { " " };
        let _ = writeln!(out, "{mark}{pc:>4}:  {}", disasm_inst(inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Operand, Special};

    #[test]
    fn listing_covers_every_instruction_kind() {
        let mut k = KernelBuilder::new("all");
        let a = k.reg();
        let b = k.reg();
        k.iadd(a, a.into(), Operand::Imm(1));
        k.fmad(b, a.into(), b.into(), Operand::f32(1.0));
        k.dadd(b, b.into(), Operand::f64(2.0));
        k.fsqrt(b, b.into());
        k.i2f(b, a.into());
        k.ld_global_u32(a, b, 4);
        k.st_shared_u64(a.into(), b, -8);
        k.special_into(a, Special::LaneId);
        k.bar();
        let c = k.reg();
        k.if_(c, |k| k.mov(a, Operand::Imm(0x10000)));
        let text = disasm(&k.finish());
        for needle in [
            "add.i64",
            "fma.f32",
            "add.f64",
            "sqrt.sfu",
            "cvt.f32.i64",
            "ld.global.u32",
            "st.shared.u64",
            "%laneid",
            "bar.sync",
            "bra.z ",
            "0x10000",
            "exit",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn branch_targets_are_marked() {
        let mut k = KernelBuilder::new("m");
        let c = k.reg();
        k.while_(
            |k| {
                let t = k.reg();
                k.setlt(t, c.into(), Operand::Imm(3));
                t
            },
            |k| k.iadd(c, c.into(), Operand::Imm(1)),
        );
        let text = disasm(&k.finish());
        assert!(text.lines().any(|l| l.starts_with('>')), "{text}");
    }

    #[test]
    fn header_reports_metadata() {
        let mut k = KernelBuilder::new("hdr");
        let _ = k.shared_alloc(64);
        let r = k.reg();
        k.mov(r, Operand::Imm(0));
        let text = disasm(&k.finish());
        assert!(text.contains("kernel hdr"));
        assert!(text.contains("64 B shared"));
    }
}
