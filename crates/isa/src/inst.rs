//! Instruction definitions and classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-thread register (64-bit raw storage; instructions give it
/// integer, f32 or f64 meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register or immediate source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Read a register.
    Reg(Reg),
    /// A 64-bit immediate (raw bits; float instructions reinterpret).
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl Operand {
    /// An f32 immediate (stored as raw bits).
    #[must_use]
    pub fn f32(v: f32) -> Operand {
        Operand::Imm(i64::from(v.to_bits()))
    }

    /// An f64 immediate (stored as raw bits).
    #[must_use]
    pub fn f64(v: f64) -> Operand {
        Operand::Imm(v.to_bits() as i64)
    }
}

/// Integer ALU operations (64-bit two's complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntOp {
    /// `d = a + b` — uses the ALU adder.
    Add,
    /// `d = a - b` — uses the ALU adder.
    Sub,
    /// `d = a * b` (separate multiplier unit).
    Mul,
    /// `d = a / b` (0 when `b == 0`, matching GPU saturating semantics we
    /// adopt for robustness).
    Div,
    /// `d = a % b` (0 when `b == 0`).
    Rem,
    /// `d = min(a, b)` — the comparison subtracts, so it uses the adder.
    Min,
    /// `d = max(a, b)` — uses the adder.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (`b & 63`).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// `d = (a < b) as i64` — subtract-compare, uses the adder.
    SetLt,
    /// `d = (a <= b) as i64` — uses the adder.
    SetLe,
    /// `d = (a == b) as i64` — uses the adder.
    SetEq,
    /// `d = (a != b) as i64` — uses the adder.
    SetNe,
}

impl IntOp {
    /// Whether the operation exercises the ALU adder datapath (add, sub,
    /// and the subtract-based comparisons — the paper's Fig. 2 marks
    /// `MIN` operations as additions for exactly this reason).
    #[must_use]
    pub fn uses_adder(self) -> bool {
        matches!(
            self,
            IntOp::Add
                | IntOp::Sub
                | IntOp::Min
                | IntOp::Max
                | IntOp::SetLt
                | IntOp::SetLe
                | IntOp::SetEq
                | IntOp::SetNe
        )
    }

    /// Whether the adder performs a subtraction for this operation.
    #[must_use]
    pub fn is_subtract(self) -> bool {
        self.uses_adder() && self != IntOp::Add
    }
}

/// Floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatOp {
    /// `d = a + b` — mantissa adder.
    Add,
    /// `d = a - b` — mantissa adder.
    Sub,
    /// `d = a * b` (multiplier).
    Mul,
    /// `d = a / b` (iterative; modelled as its own power class).
    Div,
    /// `d = min(a, b)`.
    Min,
    /// `d = max(a, b)`.
    Max,
    /// `d = (a < b) as i64`.
    SetLt,
    /// `d = (a <= b) as i64`.
    SetLe,
    /// `d = (a == b) as i64`.
    SetEq,
}

/// Floating-point width selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatWidth {
    /// IEEE binary32 (FPU).
    F32,
    /// IEEE binary64 (DPU).
    F64,
}

/// Special-function-unit operations (f32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SfuOp {
    /// Square root.
    Sqrt,
    /// Base-e exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Reciprocal.
    Rcp,
    /// Reciprocal square root.
    Rsqrt,
}

/// Numeric types for conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumType {
    /// 64-bit signed integer.
    I64,
    /// IEEE binary32.
    F32,
    /// IEEE binary64.
    F64,
}

/// Memory spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Space {
    /// Device global memory.
    Global,
    /// Per-block shared memory.
    Shared,
}

/// Access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl MemWidth {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }
}

/// Branch condition: taken when the register is non-zero (or zero, when
/// `if_nonzero` is false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchCond {
    /// The predicate register.
    pub reg: Reg,
    /// Branch when the register is non-zero (else when zero).
    pub if_nonzero: bool,
}

/// Special per-thread values readable by kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block.
    Tid,
    /// Block index within the grid.
    CtaId,
    /// Threads per block.
    NTid,
    /// Blocks in the grid.
    NCta,
    /// Lane id within the warp (0‥31).
    LaneId,
    /// Warp id within the block.
    WarpId,
    /// Global thread id (`CtaId * NTid + Tid`).
    GlobalTid,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Integer ALU operation.
    Int {
        /// Operation.
        op: IntOp,
        /// Destination.
        d: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating-point operation.
    Float {
        /// Operation.
        op: FloatOp,
        /// Width (FPU or DPU).
        w: FloatWidth,
        /// Destination.
        d: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Fused multiply-add `d = a·b + c`.
    Fma {
        /// Width (FPU or DPU).
        w: FloatWidth,
        /// Destination.
        d: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// Special-function operation (f32).
    Sfu {
        /// Operation.
        op: SfuOp,
        /// Destination.
        d: Reg,
        /// Source.
        a: Operand,
    },
    /// Numeric conversion.
    Cvt {
        /// Destination.
        d: Reg,
        /// Source.
        a: Operand,
        /// Source type.
        from: NumType,
        /// Destination type.
        to: NumType,
    },
    /// Load `d = [space][addr + offset]`.
    Ld {
        /// Destination.
        d: Reg,
        /// Address register (byte address).
        addr: Reg,
        /// Byte offset.
        offset: i64,
        /// Memory space.
        space: Space,
        /// Access width.
        width: MemWidth,
    },
    /// Store `[space][addr + offset] = v`.
    St {
        /// Value source.
        v: Operand,
        /// Address register (byte address).
        addr: Reg,
        /// Byte offset.
        offset: i64,
        /// Memory space.
        space: Space,
        /// Access width.
        width: MemWidth,
    },
    /// Branch (conditional or unconditional) with an explicit SIMT
    /// reconvergence point for divergence handling.
    Bra {
        /// `None` = unconditional.
        cond: Option<BranchCond>,
        /// Target PC.
        target: u32,
        /// Immediate-post-dominator PC where diverged threads reconverge.
        reconv: u32,
    },
    /// Block-wide barrier (`__syncthreads`).
    Bar,
    /// Thread exit.
    Exit,
    /// Register move / immediate load.
    Mov {
        /// Destination.
        d: Reg,
        /// Source.
        a: Operand,
    },
    /// Read a special value.
    Special {
        /// Destination.
        d: Reg,
        /// Which special.
        s: Special,
    },
}

/// Instruction classes for the dynamic-mix (Fig. 1) and power accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Integer add/sub on the ALU adder.
    AluAdd,
    /// Other simple ALU work (logic, shifts, min/max, compares, selects).
    AluOther,
    /// FP32/FP64 add/sub on the FPU/DPU mantissa adder.
    FpuAdd,
    /// Other FPU/DPU work (FMA, min/max, compares).
    FpuOther,
    /// Integer multiply/divide (separate units).
    IntMulDiv,
    /// FP multiply/divide (separate units).
    FpMulDiv,
    /// Special function unit.
    Sfu,
    /// Loads and stores.
    Mem,
    /// Branches, barriers, exits.
    Control,
    /// Moves, specials, conversions.
    Other,
}

impl Inst {
    /// The instruction's class.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Int { op, .. } => match op {
                IntOp::Add | IntOp::Sub => InstClass::AluAdd,
                IntOp::Mul | IntOp::Div | IntOp::Rem => InstClass::IntMulDiv,
                _ => InstClass::AluOther,
            },
            Inst::Float { op, .. } => match op {
                FloatOp::Add | FloatOp::Sub => InstClass::FpuAdd,
                FloatOp::Mul | FloatOp::Div => InstClass::FpMulDiv,
                _ => InstClass::FpuOther,
            },
            Inst::Fma { .. } => InstClass::FpuOther,
            Inst::Sfu { .. } => InstClass::Sfu,
            Inst::Cvt { .. } => InstClass::Other,
            Inst::Ld { .. } | Inst::St { .. } => InstClass::Mem,
            Inst::Bra { .. } | Inst::Bar | Inst::Exit => InstClass::Control,
            Inst::Mov { .. } | Inst::Special { .. } => InstClass::Other,
        }
    }

    /// Whether executing this instruction drives an add/sub through a
    /// (potentially speculative) adder datapath.
    #[must_use]
    pub fn uses_adder(&self) -> bool {
        match self {
            Inst::Int { op, .. } => op.uses_adder(),
            Inst::Float { op, .. } => matches!(op, FloatOp::Add | FloatOp::Sub),
            Inst::Fma { .. } => true,
            _ => false,
        }
    }
}

/// All [`InstClass`] values, for iteration in reports.
#[must_use]
pub fn all_classes() -> [InstClass; 10] {
    [
        InstClass::AluAdd,
        InstClass::AluOther,
        InstClass::FpuAdd,
        InstClass::FpuOther,
        InstClass::IntMulDiv,
        InstClass::FpMulDiv,
        InstClass::Sfu,
        InstClass::Mem,
        InstClass::Control,
        InstClass::Other,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        let add = Inst::Int {
            op: IntOp::Add,
            d: Reg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(add.class(), InstClass::AluAdd);
        assert!(add.uses_adder());

        let min = Inst::Int {
            op: IntOp::Min,
            d: Reg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(min.class(), InstClass::AluOther);
        assert!(min.uses_adder(), "MIN compares by subtracting");

        let fma = Inst::Fma {
            w: FloatWidth::F32,
            d: Reg(0),
            a: Operand::f32(1.0),
            b: Operand::f32(2.0),
            c: Operand::f32(3.0),
        };
        assert_eq!(fma.class(), InstClass::FpuOther);
        assert!(fma.uses_adder(), "FMA accumulates on the mantissa adder");

        let mul = Inst::Int {
            op: IntOp::Mul,
            d: Reg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(mul.class(), InstClass::IntMulDiv);
        assert!(!mul.uses_adder());
    }

    #[test]
    fn float_immediates_round_trip() {
        if let Operand::Imm(raw) = Operand::f32(1.5) {
            assert_eq!(f32::from_bits(raw as u32), 1.5);
        } else {
            panic!("expected immediate");
        }
        if let Operand::Imm(raw) = Operand::f64(-2.25) {
            assert_eq!(f64::from_bits(raw as u64), -2.25);
        } else {
            panic!("expected immediate");
        }
    }

    #[test]
    fn subtract_flags() {
        assert!(IntOp::SetLt.is_subtract());
        assert!(IntOp::Sub.is_subtract());
        assert!(!IntOp::Add.is_subtract());
        assert!(!IntOp::Xor.is_subtract());
        assert!(!IntOp::Xor.uses_adder());
    }
}
