//! Kernel programs and launch configurations.

use crate::inst::Inst;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated sequence of instructions; the PC is the instruction index
/// (this is also what the Carry Register File indexes with `PC[3:0]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    num_regs: u16,
    shared_bytes: u64,
}

/// Program validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A branch target or reconvergence PC lies outside the program.
    BranchOutOfRange {
        /// PC of the offending branch.
        pc: u32,
        /// The bad target.
        target: u32,
    },
    /// An instruction references a register past `num_regs`.
    RegisterOutOfRange {
        /// PC of the offending instruction.
        pc: u32,
        /// The bad register index.
        reg: u16,
    },
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ValidateProgramError::RegisterOutOfRange { pc, reg } => {
                write!(
                    f,
                    "instruction at pc {pc} references register r{reg} out of range"
                )
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

impl Program {
    /// Assembles a program (normally via [`crate::KernelBuilder`]).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        num_regs: u16,
        shared_bytes: u64,
    ) -> Self {
        Program {
            name: name.into(),
            insts,
            num_regs,
            shared_bytes,
        }
    }

    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction at `pc`, if in range.
    #[must_use]
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Registers per thread.
    #[must_use]
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Shared-memory bytes per block.
    #[must_use]
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    /// Structural validation: branch targets in range, registers within
    /// the declared register count.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] found.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        use crate::inst::Operand;
        let len = self.len();
        let check_reg = |pc: u32, r: crate::inst::Reg| {
            if r.0 >= self.num_regs {
                Err(ValidateProgramError::RegisterOutOfRange { pc, reg: r.0 })
            } else {
                Ok(())
            }
        };
        let check_op = |pc: u32, o: Operand| match o {
            Operand::Reg(r) => check_reg(pc, r),
            Operand::Imm(_) => Ok(()),
        };
        for (i, inst) in self.insts.iter().enumerate() {
            let pc = i as u32;
            match *inst {
                Inst::Int { d, a, b, .. } | Inst::Float { d, a, b, .. } => {
                    check_reg(pc, d)?;
                    check_op(pc, a)?;
                    check_op(pc, b)?;
                }
                Inst::Fma { d, a, b, c, .. } => {
                    check_reg(pc, d)?;
                    check_op(pc, a)?;
                    check_op(pc, b)?;
                    check_op(pc, c)?;
                }
                Inst::Sfu { d, a, .. } | Inst::Cvt { d, a, .. } | Inst::Mov { d, a } => {
                    check_reg(pc, d)?;
                    check_op(pc, a)?;
                }
                Inst::Ld { d, addr, .. } => {
                    check_reg(pc, d)?;
                    check_reg(pc, addr)?;
                }
                Inst::St { v, addr, .. } => {
                    check_op(pc, v)?;
                    check_reg(pc, addr)?;
                }
                Inst::Bra {
                    cond,
                    target,
                    reconv,
                } => {
                    if let Some(c) = cond {
                        check_reg(pc, c.reg)?;
                    }
                    // A target equal to len() is a fall-off-the-end exit.
                    if target > len {
                        return Err(ValidateProgramError::BranchOutOfRange { pc, target });
                    }
                    if reconv > len {
                        return Err(ValidateProgramError::BranchOutOfRange { pc, target: reconv });
                    }
                }
                Inst::Bar | Inst::Exit => {}
                Inst::Special { d, .. } => check_reg(pc, d)?,
            }
        }
        Ok(())
    }
}

/// A 1-D kernel launch: `grid_dim` blocks of `block_dim` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_dim: u32,
    /// Threads per block (rounded up to whole warps at execution).
    pub block_dim: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `block_dim` exceeds 1024.
    #[must_use]
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        assert!(grid_dim > 0, "grid must have at least one block");
        assert!(
            (1..=1024).contains(&block_dim),
            "block size must be 1..=1024"
        );
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Total threads in the launch.
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }

    /// Warps per block (ceiling).
    #[must_use]
    pub fn warps_per_block(&self) -> u32 {
        self.block_dim.div_ceil(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{IntOp, Operand, Reg};

    #[test]
    fn validate_catches_bad_register() {
        let p = Program::new(
            "bad",
            vec![Inst::Int {
                op: IntOp::Add,
                d: Reg(9),
                a: Operand::Imm(0),
                b: Operand::Imm(0),
            }],
            4,
            0,
        );
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::RegisterOutOfRange { pc: 0, reg: 9 })
        ));
    }

    #[test]
    fn validate_catches_bad_branch() {
        let p = Program::new(
            "bad",
            vec![Inst::Bra {
                cond: None,
                target: 99,
                reconv: 0,
            }],
            1,
            0,
        );
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::BranchOutOfRange { pc: 0, target: 99 })
        ));
    }

    #[test]
    fn branch_to_end_is_allowed() {
        let p = Program::new(
            "ok",
            vec![Inst::Bra {
                cond: None,
                target: 1,
                reconv: 1,
            }],
            1,
            0,
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn launch_arithmetic() {
        let l = LaunchConfig::new(10, 100);
        assert_eq!(l.total_threads(), 1000);
        assert_eq!(l.warps_per_block(), 4);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn oversized_block_rejected() {
        let _ = LaunchConfig::new(1, 2048);
    }
}
