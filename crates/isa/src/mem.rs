//! Typed memory images for global and shared memory.

use serde::{Deserialize, Serialize};

/// A byte-addressed memory image with typed accessors.
///
/// Out-of-range accesses panic: in this reproduction an OOB access is a
/// kernel bug that should fail loudly in tests, not corrupt results.
///
/// ```
/// use st2_isa::MemImage;
/// let mut m = MemImage::new(64);
/// m.write_f32(8, 2.5);
/// assert_eq!(m.read_f32(8), 2.5);
/// m.write_u64(16, u64::MAX);
/// assert_eq!(m.read_u64(16), u64::MAX);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemImage {
    data: Vec<u8>,
}

impl MemImage {
    /// A zero-filled image of `bytes` bytes.
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        MemImage {
            data: vec![0; bytes as usize],
        }
    }

    /// Builds an image holding a slice of f32 values.
    #[must_use]
    pub fn from_f32(values: &[f32]) -> Self {
        let mut m = MemImage::new(values.len() as u64 * 4);
        for (i, &v) in values.iter().enumerate() {
            m.write_f32(i as u64 * 4, v);
        }
        m
    }

    /// Builds an image holding a slice of i32 values (stored as 4-byte).
    #[must_use]
    pub fn from_i32(values: &[i32]) -> Self {
        let mut m = MemImage::new(values.len() as u64 * 4);
        for (i, &v) in values.iter().enumerate() {
            m.write_u32(i as u64 * 4, v as u32);
        }
        m
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Whether the image is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grows the image to at least `bytes` (zero-filled).
    pub fn ensure_len(&mut self, bytes: u64) {
        if bytes as usize > self.data.len() {
            self.data.resize(bytes as usize, 0);
        }
    }

    /// Reads 4 bytes (little-endian).
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("4-byte slice"))
    }

    /// Writes 4 bytes.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads 8 bytes.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.data[a..a + 8].try_into().expect("8-byte slice"))
    }

    /// Writes 8 bytes.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let a = addr as usize;
        self.data[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an f32.
    #[must_use]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an f32.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Reads an f64.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads a 4-byte value sign-extended to i64 (the common "i32 in
    /// memory" case for kernels with 64-bit registers).
    #[must_use]
    pub fn read_i32_sext(&self, addr: u64) -> i64 {
        i64::from(self.read_u32(addr) as i32)
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Extracts `count` f32 values starting at `addr`.
    #[must_use]
    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(addr + i as u64 * 4))
            .collect()
    }

    /// Extracts `count` i32 values (sign-extended) starting at `addr`.
    #[must_use]
    pub fn read_i32_slice(&self, addr: u64, count: usize) -> Vec<i64> {
        (0..count)
            .map(|i| self.read_i32_sext(addr + i as u64 * 4))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut m = MemImage::new(32);
        m.write_u32(0, 0xdead_beef);
        assert_eq!(m.read_u32(0), 0xdead_beef);
        m.write_f64(8, -1.25e100);
        assert_eq!(m.read_f64(8), -1.25e100);
        m.write_u32(4, u32::MAX);
        assert_eq!(m.read_i32_sext(4), -1);
    }

    #[test]
    fn from_slices() {
        let m = MemImage::from_f32(&[1.0, 2.0, 3.5]);
        assert_eq!(m.read_f32_slice(0, 3), vec![1.0, 2.0, 3.5]);
        let m = MemImage::from_i32(&[-5, 7]);
        assert_eq!(m.read_i32_slice(0, 2), vec![-5, 7]);
    }

    #[test]
    fn ensure_len_grows_only() {
        let mut m = MemImage::new(8);
        m.ensure_len(4);
        assert_eq!(m.len(), 8);
        m.ensure_len(100);
        assert_eq!(m.len(), 100);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let m = MemImage::new(4);
        let _ = m.read_u64(0);
    }
}
