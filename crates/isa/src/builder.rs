//! Structured kernel construction.
//!
//! [`KernelBuilder`] is the "compiler" of this reproduction: kernels are
//! written as structured Rust code (ifs, whiles, for-ranges) and the
//! builder lowers them to branches with **correct SIMT reconvergence
//! points** (the immediate post-dominator of every divergent branch),
//! which the simulator's divergence stack relies on.

use crate::inst::{
    BranchCond, FloatOp, FloatWidth, Inst, IntOp, MemWidth, NumType, Operand, Reg, SfuOp, Space,
    Special,
};
use crate::program::Program;

/// Builds one kernel program.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Inst>,
    next_reg: u16,
    shared_bytes: u64,
}

const PLACEHOLDER: u32 = u32::MAX;

impl KernelBuilder {
    /// Starts a new kernel.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            next_reg: 0,
            shared_bytes: 0,
        }
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if more than 255 registers are allocated (the per-thread
    /// register budget).
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 255, "register budget exhausted");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Reserves `bytes` of per-block shared memory, returning its base
    /// byte address (8-byte aligned).
    pub fn shared_alloc(&mut self, bytes: u64) -> u64 {
        let base = self.shared_bytes;
        self.shared_bytes += bytes.div_ceil(8) * 8;
        base
    }

    /// Current PC (index of the next instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    fn emit(&mut self, i: Inst) -> u32 {
        let pc = self.here();
        self.insts.push(i);
        pc
    }

    // ---- integer ops -----------------------------------------------------

    fn int(&mut self, op: IntOp, d: Reg, a: Operand, b: Operand) {
        self.emit(Inst::Int { op, d, a, b });
    }

    /// `d = a + b`.
    pub fn iadd(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Add, d, a, b);
    }
    /// `d = a - b`.
    pub fn isub(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Sub, d, a, b);
    }
    /// `d = a * b`.
    pub fn imul(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Mul, d, a, b);
    }
    /// `d = a / b` (0 when b = 0).
    pub fn idiv(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Div, d, a, b);
    }
    /// `d = a % b` (0 when b = 0).
    pub fn irem(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Rem, d, a, b);
    }
    /// `d = min(a, b)`.
    pub fn imin(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Min, d, a, b);
    }
    /// `d = max(a, b)`.
    pub fn imax(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Max, d, a, b);
    }
    /// Bitwise AND.
    pub fn iand(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::And, d, a, b);
    }
    /// Bitwise OR.
    pub fn ior(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Or, d, a, b);
    }
    /// Bitwise XOR.
    pub fn ixor(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Xor, d, a, b);
    }
    /// Logical shift left.
    pub fn ishl(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Shl, d, a, b);
    }
    /// Logical shift right.
    pub fn ishr(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Shr, d, a, b);
    }
    /// Arithmetic shift right.
    pub fn isra(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::Sra, d, a, b);
    }
    /// `d = (a < b) as i64` (signed).
    pub fn setlt(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::SetLt, d, a, b);
    }
    /// `d = (a <= b) as i64`.
    pub fn setle(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::SetLe, d, a, b);
    }
    /// `d = (a == b) as i64`.
    pub fn seteq(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::SetEq, d, a, b);
    }
    /// `d = (a != b) as i64`.
    pub fn setne(&mut self, d: Reg, a: Operand, b: Operand) {
        self.int(IntOp::SetNe, d, a, b);
    }

    // ---- floating-point ops ----------------------------------------------

    fn float(&mut self, op: FloatOp, w: FloatWidth, d: Reg, a: Operand, b: Operand) {
        self.emit(Inst::Float { op, w, d, a, b });
    }

    /// f32 `d = a + b`.
    pub fn fadd(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Add, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = a - b`.
    pub fn fsub(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Sub, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = a * b`.
    pub fn fmul(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Mul, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = a / b`.
    pub fn fdiv(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Div, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = min(a, b)`.
    pub fn fmin(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Min, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = max(a, b)`.
    pub fn fmax(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Max, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = (a < b) as i64`.
    pub fn fsetlt(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::SetLt, FloatWidth::F32, d, a, b);
    }
    /// f32 `d = (a <= b) as i64`.
    pub fn fsetle(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::SetLe, FloatWidth::F32, d, a, b);
    }
    /// f32 fused multiply-add `d = a·b + c`.
    pub fn fmad(&mut self, d: Reg, a: Operand, b: Operand, c: Operand) {
        self.emit(Inst::Fma {
            w: FloatWidth::F32,
            d,
            a,
            b,
            c,
        });
    }
    /// f64 `d = a + b`.
    pub fn dadd(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Add, FloatWidth::F64, d, a, b);
    }
    /// f64 `d = a - b`.
    pub fn dsub(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Sub, FloatWidth::F64, d, a, b);
    }
    /// f64 `d = a * b`.
    pub fn dmul(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Mul, FloatWidth::F64, d, a, b);
    }
    /// f64 `d = a / b`.
    pub fn ddiv(&mut self, d: Reg, a: Operand, b: Operand) {
        self.float(FloatOp::Div, FloatWidth::F64, d, a, b);
    }
    /// f64 fused multiply-add.
    pub fn dmad(&mut self, d: Reg, a: Operand, b: Operand, c: Operand) {
        self.emit(Inst::Fma {
            w: FloatWidth::F64,
            d,
            a,
            b,
            c,
        });
    }

    // ---- SFU and conversions ----------------------------------------------

    fn sfu(&mut self, op: SfuOp, d: Reg, a: Operand) {
        self.emit(Inst::Sfu { op, d, a });
    }

    /// f32 square root (SFU).
    pub fn fsqrt(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Sqrt, d, a);
    }
    /// f32 exponential (SFU).
    pub fn fexp(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Exp, d, a);
    }
    /// f32 natural log (SFU).
    pub fn flog(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Log, d, a);
    }
    /// f32 sine (SFU).
    pub fn fsin(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Sin, d, a);
    }
    /// f32 cosine (SFU).
    pub fn fcos(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Cos, d, a);
    }
    /// f32 reciprocal (SFU).
    pub fn frcp(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Rcp, d, a);
    }
    /// f32 reciprocal square root (SFU).
    pub fn frsqrt(&mut self, d: Reg, a: Operand) {
        self.sfu(SfuOp::Rsqrt, d, a);
    }

    fn cvt(&mut self, d: Reg, a: Operand, from: NumType, to: NumType) {
        self.emit(Inst::Cvt { d, a, from, to });
    }

    /// i64 → f32.
    pub fn i2f(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::I64, NumType::F32);
    }
    /// f32 → i64 (truncating).
    pub fn f2i(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::F32, NumType::I64);
    }
    /// i64 → f64.
    pub fn i2d(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::I64, NumType::F64);
    }
    /// f64 → i64 (truncating).
    pub fn d2i(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::F64, NumType::I64);
    }
    /// f32 → f64.
    pub fn f2d(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::F32, NumType::F64);
    }
    /// f64 → f32.
    pub fn d2f(&mut self, d: Reg, a: Operand) {
        self.cvt(d, a, NumType::F64, NumType::F32);
    }

    // ---- memory ------------------------------------------------------------

    fn ld(&mut self, d: Reg, addr: Reg, offset: i64, space: Space, width: MemWidth) {
        self.emit(Inst::Ld {
            d,
            addr,
            offset,
            space,
            width,
        });
    }

    fn st(&mut self, v: Operand, addr: Reg, offset: i64, space: Space, width: MemWidth) {
        self.emit(Inst::St {
            v,
            addr,
            offset,
            space,
            width,
        });
    }

    /// Global 4-byte load (sign-extended into the 64-bit register; f32
    /// users read the low 32 bits).
    pub fn ld_global_u32(&mut self, d: Reg, addr: Reg, offset: i64) {
        self.ld(d, addr, offset, Space::Global, MemWidth::W4);
    }
    /// Global 8-byte load.
    pub fn ld_global_u64(&mut self, d: Reg, addr: Reg, offset: i64) {
        self.ld(d, addr, offset, Space::Global, MemWidth::W8);
    }
    /// Global 4-byte store (truncating).
    pub fn st_global_u32(&mut self, v: Operand, addr: Reg, offset: i64) {
        self.st(v, addr, offset, Space::Global, MemWidth::W4);
    }
    /// Global 8-byte store.
    pub fn st_global_u64(&mut self, v: Operand, addr: Reg, offset: i64) {
        self.st(v, addr, offset, Space::Global, MemWidth::W8);
    }
    /// Shared 4-byte load.
    pub fn ld_shared_u32(&mut self, d: Reg, addr: Reg, offset: i64) {
        self.ld(d, addr, offset, Space::Shared, MemWidth::W4);
    }
    /// Shared 8-byte load.
    pub fn ld_shared_u64(&mut self, d: Reg, addr: Reg, offset: i64) {
        self.ld(d, addr, offset, Space::Shared, MemWidth::W8);
    }
    /// Shared 4-byte store.
    pub fn st_shared_u32(&mut self, v: Operand, addr: Reg, offset: i64) {
        self.st(v, addr, offset, Space::Shared, MemWidth::W4);
    }
    /// Shared 8-byte store.
    pub fn st_shared_u64(&mut self, v: Operand, addr: Reg, offset: i64) {
        self.st(v, addr, offset, Space::Shared, MemWidth::W8);
    }

    // ---- misc ---------------------------------------------------------------

    /// `d = a`.
    pub fn mov(&mut self, d: Reg, a: Operand) {
        self.emit(Inst::Mov { d, a });
    }

    /// Reads a special value into a fresh register.
    pub fn special(&mut self, s: Special) -> Reg {
        let d = self.reg();
        self.emit(Inst::Special { d, s });
        d
    }

    /// Reads a special value into an existing register.
    pub fn special_into(&mut self, d: Reg, s: Special) {
        self.emit(Inst::Special { d, s });
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Inst::Bar);
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Inst::Exit);
    }

    // ---- structured control flow ---------------------------------------------

    /// Executes `then` for threads where `cond != 0`; all threads
    /// reconverge after it.
    pub fn if_(&mut self, cond: Reg, then: impl FnOnce(&mut Self)) {
        let bra = self.emit(Inst::Bra {
            cond: Some(BranchCond {
                reg: cond,
                if_nonzero: false, // skip the body when cond == 0
            }),
            target: PLACEHOLDER,
            reconv: PLACEHOLDER,
        });
        then(self);
        let end = self.here();
        self.patch(bra, end, end);
    }

    /// Executes `then` where `cond != 0`, `els` elsewhere; reconverges
    /// after both.
    pub fn if_else(
        &mut self,
        cond: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let bra_else = self.emit(Inst::Bra {
            cond: Some(BranchCond {
                reg: cond,
                if_nonzero: false,
            }),
            target: PLACEHOLDER,
            reconv: PLACEHOLDER,
        });
        then(self);
        let bra_end = self.emit(Inst::Bra {
            cond: None,
            target: PLACEHOLDER,
            reconv: PLACEHOLDER,
        });
        let else_pc = self.here();
        els(self);
        let end = self.here();
        self.patch(bra_else, else_pc, end);
        self.patch(bra_end, end, end);
    }

    /// `while cond { body }` — `cond` is regenerated each iteration and
    /// must return a predicate register; exited threads wait at the loop's
    /// post-dominator.
    pub fn while_(&mut self, cond: impl FnOnce(&mut Self) -> Reg, body: impl FnOnce(&mut Self)) {
        let start = self.here();
        let c = cond(self);
        let exit_bra = self.emit(Inst::Bra {
            cond: Some(BranchCond {
                reg: c,
                if_nonzero: false, // leave the loop when cond == 0
            }),
            target: PLACEHOLDER,
            reconv: PLACEHOLDER,
        });
        body(self);
        self.emit(Inst::Bra {
            cond: None,
            target: start,
            reconv: start,
        });
        let end = self.here();
        self.patch(exit_bra, end, end);
    }

    /// `for i in start..end { body(i) }` with a fresh iterator register
    /// incremented by the canonical loop-iterator `IADD` the paper's
    /// motivation section describes.
    pub fn for_range(&mut self, start: Operand, end: Operand, body: impl FnOnce(&mut Self, Reg)) {
        let i = self.reg();
        self.mov(i, start);
        self.while_(
            |k| {
                let c = k.reg();
                k.setlt(c, i.into(), end);
                c
            },
            |k| {
                body(k, i);
                k.iadd(i, i.into(), Operand::Imm(1));
            },
        );
    }

    fn patch(&mut self, pc: u32, target: u32, reconv: u32) {
        match &mut self.insts[pc as usize] {
            Inst::Bra {
                target: t,
                reconv: r,
                ..
            } => {
                *t = target;
                *r = reconv;
            }
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    /// Finalises the program (appends a trailing `Exit` if needed and
    /// validates).
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails validation — that would be a
    /// builder bug, not a user error.
    #[must_use]
    pub fn finish(mut self) -> Program {
        if !matches!(self.insts.last(), Some(Inst::Exit)) {
            self.emit(Inst::Exit);
        }
        let p = Program::new(
            self.name,
            self.insts,
            self.next_reg.max(1),
            self.shared_bytes,
        );
        p.validate().expect("builder produced an invalid program");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_patches_reconvergence() {
        let mut k = KernelBuilder::new("t");
        let c = k.reg();
        let x = k.reg();
        k.if_(c, |k| {
            k.iadd(x, x.into(), Operand::Imm(1));
            k.iadd(x, x.into(), Operand::Imm(2));
        });
        let p = k.finish();
        match p.insts()[0] {
            Inst::Bra {
                target,
                reconv,
                cond,
            } => {
                assert_eq!(target, 3, "skip both body instructions");
                assert_eq!(reconv, 3);
                assert!(!cond.expect("conditional").if_nonzero);
            }
            ref other => panic!("expected Bra, got {other:?}"),
        }
    }

    #[test]
    fn if_else_layout() {
        let mut k = KernelBuilder::new("t");
        let c = k.reg();
        let x = k.reg();
        k.if_else(
            c,
            |k| k.mov(x, Operand::Imm(1)),
            |k| k.mov(x, Operand::Imm(2)),
        );
        let p = k.finish();
        // 0: Bra(!c) -> 3 (else), reconv 4
        // 1: mov x,1
        // 2: Bra -> 4
        // 3: mov x,2
        // 4: Exit
        match p.insts()[0] {
            Inst::Bra { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("{other:?}"),
        }
        match p.insts()[2] {
            Inst::Bra { target, cond, .. } => {
                assert_eq!(target, 4);
                assert!(cond.is_none());
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_loop_back_edge() {
        let mut k = KernelBuilder::new("t");
        let i = k.reg();
        k.mov(i, Operand::Imm(0));
        k.while_(
            |k| {
                let c = k.reg();
                k.setlt(c, i.into(), Operand::Imm(10));
                c
            },
            |k| k.iadd(i, i.into(), Operand::Imm(1)),
        );
        let p = k.finish();
        // 0: mov; 1: setlt; 2: bra exit -> 5; 3: iadd; 4: bra -> 1; 5: Exit
        match p.insts()[2] {
            Inst::Bra { target, reconv, .. } => {
                assert_eq!(target, 5);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("{other:?}"),
        }
        match p.insts()[4] {
            Inst::Bra { target, .. } => assert_eq!(target, 1),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_range_emits_iterator_add() {
        let mut k = KernelBuilder::new("t");
        let acc = k.reg();
        k.for_range(Operand::Imm(0), Operand::Imm(4), |k, i| {
            k.iadd(acc, acc.into(), i.into());
        });
        let p = k.finish();
        let adds = p
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::Int { op: IntOp::Add, .. }))
            .count();
        assert_eq!(adds, 2, "body add + iterator increment");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn shared_alloc_is_aligned() {
        let mut k = KernelBuilder::new("t");
        let a = k.shared_alloc(5);
        let b = k.shared_alloc(16);
        assert_eq!(a, 0);
        assert_eq!(b, 8);
        let p = k.finish();
        assert_eq!(p.shared_bytes(), 24);
    }

    #[test]
    fn nested_structures_validate() {
        let mut k = KernelBuilder::new("t");
        let c1 = k.reg();
        let c2 = k.reg();
        let x = k.reg();
        k.if_(c1, |k| {
            k.for_range(Operand::Imm(0), Operand::Imm(3), |k, i| {
                k.if_else(
                    c2,
                    |k| k.iadd(x, x.into(), i.into()),
                    |k| k.isub(x, x.into(), i.into()),
                );
            });
        });
        let p = k.finish();
        assert!(p.validate().is_ok());
        assert!(p.len() > 8);
    }
}
