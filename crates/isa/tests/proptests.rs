//! Property-based tests for the ISA builder and memory images.

use proptest::prelude::*;
use st2_isa::{Inst, KernelBuilder, MemImage, Operand};

/// A random nesting of structured control flow, expressed as a small
/// instruction tree the builder lowers.
#[derive(Debug, Clone)]
enum Ctl {
    Add(i64),
    If(Vec<Ctl>),
    IfElse(Vec<Ctl>, Vec<Ctl>),
    For(u8, Vec<Ctl>),
}

fn ctl_strategy() -> impl Strategy<Value = Ctl> {
    let leaf = any::<i64>().prop_map(Ctl::Add);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ctl::If),
            (
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(a, b)| Ctl::IfElse(a, b)),
            (1u8..4, prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| Ctl::For(n, b)),
        ]
    })
}

fn emit(k: &mut KernelBuilder, x: st2_isa::Reg, c: st2_isa::Reg, node: &Ctl) {
    match node {
        Ctl::Add(v) => k.iadd(x, x.into(), Operand::Imm(*v)),
        Ctl::If(body) => k.if_(c, |k| {
            for n in body {
                emit(k, x, c, n);
            }
        }),
        Ctl::IfElse(t, e) => k.if_else(
            c,
            |k| {
                for n in t {
                    emit(k, x, c, n);
                }
            },
            |k| {
                for n in e {
                    emit(k, x, c, n);
                }
            },
        ),
        Ctl::For(n, body) => k.for_range(Operand::Imm(0), Operand::Imm(i64::from(*n)), |k, _i| {
            for m in body {
                emit(k, x, c, m);
            }
        }),
    }
}

proptest! {
    /// Any nesting of structured control flow lowers to a valid program
    /// whose every branch target and reconvergence point is in range.
    #[test]
    fn structured_programs_always_validate(tree in prop::collection::vec(ctl_strategy(), 1..5)) {
        let mut k = KernelBuilder::new("prop");
        let x = k.reg();
        let c = k.reg();
        for node in &tree {
            emit(&mut k, x, c, node);
        }
        let p = k.finish();
        prop_assert!(p.validate().is_ok());
        // Reconvergence points never precede their branch (structured
        // lowering produces forward reconvergence only).
        for (pc, inst) in p.insts().iter().enumerate() {
            if let Inst::Bra { reconv, target, cond } = inst {
                prop_assert!(*reconv as usize >= pc || cond.is_none() || *target <= pc as u32);
            }
        }
    }

    /// Memory image round trips for every access type.
    #[test]
    fn mem_image_round_trips(
        words in prop::collection::vec(any::<u32>(), 1..64),
        doubles in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut m = MemImage::new((words.len() * 4 + doubles.len() * 8) as u64);
        for (i, &w) in words.iter().enumerate() {
            m.write_u32(i as u64 * 4, w);
        }
        let d_base = words.len() as u64 * 4;
        for (i, &d) in doubles.iter().enumerate() {
            m.write_u64(d_base + i as u64 * 8, d);
        }
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(m.read_u32(i as u64 * 4), w);
            prop_assert_eq!(m.read_i32_sext(i as u64 * 4), i64::from(w as i32));
        }
        for (i, &d) in doubles.iter().enumerate() {
            prop_assert_eq!(m.read_u64(d_base + i as u64 * 8), d);
        }
    }

    /// f32/f64 memory access preserves bit patterns (including NaN
    /// payloads).
    #[test]
    fn float_memory_preserves_bits(bits32: u32, bits64: u64) {
        let mut m = MemImage::new(16);
        m.write_f32(0, f32::from_bits(bits32));
        m.write_f64(8, f64::from_bits(bits64));
        prop_assert_eq!(m.read_f32(0).to_bits(), bits32);
        prop_assert_eq!(m.read_f64(8).to_bits(), bits64);
    }
}
