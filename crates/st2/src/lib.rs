//! # ST² GPU — the facade crate
//!
//! One dependency that pulls in the whole reproduction of *"ST² GPU: An
//! Energy-Efficient GPU Design with Spatio-Temporal Shared-Thread
//! Speculative Adders"* (DAC 2021):
//!
//! | Crate | Role |
//! |---|---|
//! | [`core`] ([`st2_core`]) | ST² speculative adders, carry predictors, the CRF |
//! | [`circuit`] ([`st2_circuit`]) | gate-level netlists, voltage scaling, characterisation |
//! | [`isa`] ([`st2_isa`]) | the mini SIMT ISA and kernel-builder DSL |
//! | [`kernels`] ([`st2_kernels`]) | the 23 evaluation kernels |
//! | [`sim`] ([`st2_sim`]) | the cycle-level GPU simulator |
//! | [`power`] ([`st2_power`]) | the GPUWattch-style power model |
//! | [`telemetry`] ([`st2_telemetry`]) | cycle-level tracing, metrics, Chrome-trace/JSONL export |
//!
//! ## Quickstart
//!
//! ```
//! use st2::prelude::*;
//!
//! // Run a kernel on the simulated GPU with ST² adders:
//! let spec = st2::kernels::pathfinder::build(Scale::Test);
//! let mut mem = spec.memory.clone();
//! let out = run_functional(&spec.program, spec.launch, &mut mem,
//!                          &FunctionalOptions::default());
//! assert!(spec.verify(&mem).is_ok());
//! assert!(out.mix.total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use st2_circuit as circuit;
pub use st2_core as core;
pub use st2_isa as isa;
pub use st2_kernels as kernels;
pub use st2_power as power;
pub use st2_sim as sim;
pub use st2_telemetry as telemetry;

/// The most common imports for using the reproduction.
pub mod prelude {
    pub use st2_core::{
        AddRecord, AdderStats, CarryRegisterFile, OpContext, SliceLayout, SpeculationConfig,
        SpeculativeAdder, WidthClass,
    };
    pub use st2_isa::{KernelBuilder, LaunchConfig, MemImage, Operand, Program, Special};
    pub use st2_kernels::{suite, BenchSuite, KernelSpec, Scale};
    pub use st2_power::{Component, EnergyModel, KernelEnergy, PowerModel, SiliconOracle};
    pub use st2_sim::{
        run_functional, run_functional_with, run_functional_with_telemetry, run_timed,
        run_timed_with, run_timed_with_telemetry, FunctionalOptions, GpuConfig, RunOptions,
        SchedulerKind, TimedOutput, ValueTrace,
    };
    pub use st2_telemetry::{
        KernelProfile, ProfileCollector, StallReason, Telemetry, TelemetryConfig,
    };
}
