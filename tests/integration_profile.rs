//! Cross-crate integration for the warp-stall attribution profiler:
//! issue-slot accounting reconciles exactly against the clock at every
//! issue width, the per-PC hotspot table merges order-independently, and
//! the JSON kernel profile round-trips losslessly from a real run.

use proptest::prelude::*;
use st2::prelude::*;
use st2::telemetry::profile::{ALL_STALL_REASONS, NUM_STALL_REASONS};
use st2::telemetry::CycleProfile;

fn profiled_run(spec: &KernelSpec, cfg: &GpuConfig) -> (TimedOutput, KernelProfile) {
    let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
    let mut mem = spec.memory.clone();
    let out = run_timed_with_telemetry(&spec.program, spec.launch, &mut mem, cfg, &mut tele);
    spec.verify(&mem)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", spec.name));
    let profile = KernelProfile::capture(&tele, spec.name, Some(&spec.program));
    (out, profile)
}

#[test]
fn stall_counters_reconcile_at_every_issue_width() {
    let spec = st2::kernels::pathfinder::build(Scale::Test);
    for width in [1u32, 2, 4] {
        for st2_on in [false, true] {
            let mut cfg = GpuConfig::scaled(2).with_issue_width(width);
            if st2_on {
                cfg = cfg.with_st2();
            }
            let (out, profile) = profiled_run(&spec, &cfg);
            for (i, sm) in profile.sms.iter().enumerate() {
                assert_eq!(
                    sm.cycles, out.cycles,
                    "width {width} st2 {st2_on}: SM{i} cycle coverage"
                );
                assert_eq!(
                    sm.slots,
                    out.cycles * u64::from(width),
                    "width {width} st2 {st2_on}: SM{i} slot total"
                );
                // The acceptance identity: attributed stalls fill exactly
                // the slots that did not issue.
                assert_eq!(
                    sm.stalled(),
                    sm.slots - sm.issued,
                    "width {width} st2 {st2_on}: SM{i} stall sum != cycles x width - issued"
                );
                debug_assert!(sm.fetch_oob == 0, "SM{i}: out-of-range fetches");
            }
        }
    }
}

#[test]
fn st2_runs_attribute_adder_repair_stalls() {
    let spec = st2::kernels::pathfinder::build(Scale::Test);
    let (_, baseline) = profiled_run(&spec, &GpuConfig::scaled(2));
    let (_, st2) = profiled_run(&spec, &GpuConfig::scaled(2).with_st2());
    let repair = |p: &KernelProfile| p.total().stalls[StallReason::AdderRepair.index()];
    assert_eq!(
        repair(&baseline),
        0,
        "baseline has no speculation to repair"
    );
    assert!(
        repair(&st2) > 0,
        "ST2 mispredicts on pathfinder must surface as AdderRepair stalls"
    );
    // Hotspots carry the adder's per-PC accuracy join.
    assert!(
        st2.pcs
            .iter()
            .any(|r| r.adder_ops > 0 && r.accuracy() < 1.0),
        "some hot PC mispredicts"
    );
}

#[test]
fn occupancy_timeline_accounts_every_slot() {
    let spec = st2::kernels::histogram::build(Scale::Test);
    let cfg = GpuConfig::scaled(2).with_st2();
    let (out, profile) = profiled_run(&spec, &cfg);
    assert!(!profile.occupancy.is_empty(), "timeline has intervals");
    let total_slots: u64 = profile.occupancy.iter().map(|p| p.total_slots).sum();
    let issued_slots: u64 = profile.occupancy.iter().map(|p| p.issued_slots).sum();
    assert_eq!(
        total_slots,
        out.cycles * u64::from(cfg.issue_width) * u64::from(cfg.num_sms),
        "interval slot totals cover the whole run"
    );
    assert_eq!(issued_slots, out.activity.warp_instructions);
    for pair in profile.occupancy.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "intervals strictly ordered");
    }
}

#[test]
fn kernel_profile_json_round_trips_from_a_real_run() {
    let spec = st2::kernels::sortnets::build_k1(Scale::Test);
    let cfg = GpuConfig::scaled(2).with_st2();
    let (_, profile) = profiled_run(&spec, &cfg);
    let back = KernelProfile::from_json(&profile.to_json()).expect("profile JSON parses back");
    assert_eq!(back, profile, "JSON export must be lossless");
    // The renderer names the kernel, the breakdown and at least one
    // disassembled hot instruction.
    let text = profile.render(5);
    assert!(text.contains(&format!("kernel profile: {}", spec.name)));
    assert!(text.contains("stall breakdown"));
    assert!(profile.pcs.iter().any(|r| r.label.is_some()));
}

proptest! {
    // Absorbing per-SM child collectors must be order-independent: any
    // permutation of the same children yields bit-identical SM profiles,
    // per-PC tables and occupancy rows (the parallel driver's merge
    // contract).
    #[test]
    fn pc_table_merge_is_order_independent(
        cells in prop::collection::vec(
            (0usize..4, 0u32..8, 0usize..NUM_STALL_REASONS, 1u64..4, 0u32..3),
            1..32,
        ),
        rotate in 0usize..4,
    ) {
        let build = |order_rot: usize| {
            let mut children: Vec<(usize, st2::prelude::ProfileCollector)> = (0..4)
                .map(|sm| (sm, st2::prelude::ProfileCollector::new(1, 64)))
                .collect();
            for &(sm, pc, reason, dt, issued) in &cells {
                let mut cp = CycleProfile {
                    issued,
                    active_warps: issued + 1,
                    eligible_warps: issued,
                    ..CycleProfile::default()
                };
                for i in 0..issued {
                    cp.pc_issued.push(pc + i);
                }
                let r = ALL_STALL_REASONS[reason];
                cp.slot_stalls[r.index()] += 1;
                cp.pc_stalls.push((pc, r));
                children[sm].1.commit(0, dt, &cp);
            }
            for (_, c) in children.iter_mut() {
                c.snapshot(1024);
            }
            children.rotate_left(order_rot);
            let mut parent = st2::prelude::ProfileCollector::new(4, 64);
            for (sm, c) in &children {
                parent.absorb(c, *sm);
            }
            parent
        };
        let a = build(0);
        let b = build(rotate);
        prop_assert_eq!(a.sms(), b.sms());
        prop_assert_eq!(a.pcs_sorted(), b.pcs_sorted());
        prop_assert_eq!(a.series().points(), b.series().points());
    }
}
