//! Cross-crate integration: simulator activity → power model → savings.

use st2::power::breakdown::summarize;
use st2::power::calibrate::calibrate;
use st2::power::micro::stressors;
use st2::power::validate::validate;
use st2::prelude::*;

fn energies_for(specs: Vec<KernelSpec>) -> Vec<KernelEnergy> {
    let energy = EnergyModel::characterized();
    let base_cfg = GpuConfig::scaled(2);
    let st2_cfg = base_cfg.with_st2();
    specs
        .into_iter()
        .map(|spec| {
            let mut m1 = spec.memory.clone();
            let base = run_timed(&spec.program, spec.launch, &mut m1, &base_cfg);
            let mut m2 = spec.memory.clone();
            let st2 = run_timed(&spec.program, spec.launch, &mut m2, &st2_cfg);
            KernelEnergy::from_activities(
                spec.name,
                &energy,
                &base.activity,
                &st2.activity,
                base_cfg.clock_ghz,
            )
        })
        .collect()
}

#[test]
fn st2_saves_energy_on_arithmetic_kernels() {
    let kernels = energies_for(vec![
        st2::kernels::sad::build(Scale::Test),
        st2::kernels::pathfinder::build(Scale::Test),
        st2::kernels::qrng::build_k1(Scale::Test),
    ]);
    for k in &kernels {
        assert!(
            k.system_savings() > 0.0,
            "{} should save system energy, got {:.3}",
            k.name,
            k.system_savings()
        );
        assert!(
            k.chip_savings() >= k.system_savings() - 1e-9,
            "{}: chip savings must be >= system savings (DRAM unchanged)",
            k.name
        );
        // The ST² run never increases any non-ALU component.
        for (c, b, s) in k.stacks() {
            if c != Component::AluFpu && c != Component::Others {
                assert!(
                    s <= b * 1.05 + 1e-12,
                    "{}: component {c} grew from {b:.4} to {s:.4}",
                    k.name
                );
            }
        }
    }
    let summary = summarize(&kernels);
    assert!(summary.avg_system_savings > 0.05);
    assert!(
        summary.max_system_savings < 0.9,
        "savings cannot exceed the ALU share"
    );
}

#[test]
fn calibration_and_validation_pipeline() {
    // The §V-C methodology: fit on stressors, validate on kernel-shaped
    // runs, get paper-magnitude errors.
    let energy = EnergyModel::characterized();
    let mut oracle = SiliconOracle::new(2024, 0.09);
    let model = calibrate(&energy, &stressors(), &mut oracle, 1.2);

    // Validation set: timed runs of real kernels (baseline config).
    let cfg = GpuConfig::scaled(2);
    let runs: Vec<(&str, st2::sim::ActivityCounters)> = vec![
        st2::kernels::pathfinder::build(Scale::Test),
        st2::kernels::walsh::build_k1(Scale::Test),
        st2::kernels::histogram::build(Scale::Test),
        st2::kernels::kmeans::build(Scale::Test),
        st2::kernels::sobol::build(Scale::Test),
    ]
    .into_iter()
    .map(|spec| {
        let mut mem = spec.memory.clone();
        let out = run_timed(&spec.program, spec.launch, &mut mem, &cfg);
        (spec.name, out.activity)
    })
    .collect();

    let report = validate(&energy, &model, &runs, &mut oracle, cfg.clock_ghz);
    assert!(
        report.mare < 0.35,
        "validation MARE {:.3} implausibly high",
        report.mare
    );
    assert_eq!(report.kernels, 5);
}

#[test]
fn overheads_match_paper_arithmetic() {
    use st2::circuit::shifter::AdderPopulation;
    use st2::power::overheads::{storage_overheads, titan_v_shifter_overheads};

    let s = storage_overheads(&AdderPopulation::titan_v());
    assert_eq!(s.crf_bytes_chip, 35_840);
    assert_eq!(s.total_bytes_chip, 51_200);
    assert!(s.fraction_of_onchip_sram < 0.0015);

    let ls = titan_v_shifter_overheads(1e11);
    assert!(ls.area_mm2 < 5.5 && ls.area_frac_of_die < 0.0068 + 1e-4);
    assert!(ls.static_power_w < 0.6);
    assert!((ls.delay_ps - 20.8).abs() < 1e-9);
}
