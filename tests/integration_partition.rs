//! Partitioned-L2 behaviour on real suite kernels: the address-decoded
//! crossbar must actually shard traffic (balanced per-partition fills),
//! attribute queueing honestly (nonzero crossbar waits when injection
//! ports are shallow), and respond to the topology knobs.

use st2::prelude::*;

fn spec_by_name(name: &str) -> KernelSpec {
    suite(Scale::Test)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("suite kernel {name} missing"))
}

/// A starved, sharded memory subsystem with single-entry injection
/// ports: every partition owns one L2 slot per cycle and the shallow
/// crossbar queue forces visible port back-pressure. The MSHR file is
/// kept deep on purpose — with a tiny file, requests serialize on
/// MSHR-full before they can ever pile up at a port.
fn starved_partitioned_cfg(parts: u32) -> GpuConfig {
    GpuConfig::scaled(4)
        .with_mshr_entries(32)
        .with_dram_bw(1)
        .with_l2_bw(parts)
        .with_l2_partitions(parts)
        .with_xbar_queue(1)
}

#[test]
fn starved_partitions_attribute_crossbar_waits_and_balance_fills() {
    // histo_K1's binned scatters and kmeans_K1's per-feature strides
    // both burst several same-partition segments per cycle — enough to
    // back up a single-entry port — while still spreading their fills
    // across all partitions. (pathfinder's perfectly strided rows never
    // collide: one segment per cycle per partition, zero port waits.)
    for name in ["histo_K1", "kmeans_K1"] {
        let spec = spec_by_name(name);
        let cfg = starved_partitioned_cfg(4);
        let mut mem = spec.memory.clone();
        let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
        let out = run_timed_with(
            &spec.program,
            spec.launch,
            &mut mem,
            &cfg,
            RunOptions::with_telemetry(&mut tele),
        );
        spec.verify(&mem)
            .unwrap_or_else(|e| panic!("{name} failed verification: {e}"));

        assert!(
            out.activity.xbar_wait_cycles > 0,
            "{name}: single-entry injection ports never queued a fill"
        );
        assert_eq!(
            tele.registry().counter_by_name("mem.xbar_wait_cycles"),
            Some(out.activity.xbar_wait_cycles),
            "{name}: telemetry and activity disagree on crossbar waits"
        );

        let fills = tele.part_fills();
        assert_eq!(fills.len(), 4, "{name}: fills not tracked per partition");
        let total: u64 = fills.iter().sum();
        assert_eq!(
            total, out.activity.l1_misses,
            "{name}: per-partition fills must sum to fresh L1 misses"
        );
        let fair = total / 4;
        for (p, &f) in fills.iter().enumerate() {
            assert!(
                f >= fair / 2 && f <= fair * 2,
                "{name}: partition {p} saw {f} of {total} fills (fair {fair})"
            );
        }

        let profile = KernelProfile::capture(&tele, name, Some(&spec.program));
        assert_eq!(profile.mem.partitions, 4, "{name}: profile partition count");
        assert_eq!(
            profile.mem.part_fills,
            fills.to_vec(),
            "{name}: profile fills mirror telemetry"
        );
        let imbalance = profile.mem.fill_imbalance();
        assert!(
            (1.0..2.0).contains(&imbalance),
            "{name}: fill imbalance {imbalance} outside the balanced band"
        );
    }
}

#[test]
fn deeper_crossbar_queues_reduce_port_waits() {
    // The queue-depth knob must be load-bearing: widening the injection
    // ports from 1 entry to effectively unbounded can only shrink the
    // cycles fills spend queued at a full port.
    let spec = spec_by_name("histo_K1");
    let shallow = {
        let (out, _) = run(&spec, &starved_partitioned_cfg(4));
        out.activity.xbar_wait_cycles
    };
    let deep = {
        let (out, _) = run(&spec, &starved_partitioned_cfg(4).with_xbar_queue(64));
        out.activity.xbar_wait_cycles
    };
    assert!(shallow > 0, "shallow ports never queued");
    assert!(
        deep < shallow,
        "deepening the crossbar queue did not reduce port waits ({deep} vs {shallow})"
    );
}

#[test]
fn single_partition_runs_carry_no_crossbar_state() {
    // With one partition the crossbar is bypassed entirely: no wait
    // cycles, and every fill lands in bank 0.
    let spec = spec_by_name("histo_K1");
    let cfg = starved_partitioned_cfg(1);
    let mut mem = spec.memory.clone();
    let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
    let out = run_timed_with(
        &spec.program,
        spec.launch,
        &mut mem,
        &cfg,
        RunOptions::with_telemetry(&mut tele),
    );
    assert_eq!(out.activity.xbar_wait_cycles, 0);
    assert_eq!(tele.part_fills().len(), 1);
    assert_eq!(tele.part_fills()[0], out.activity.l1_misses);
}

fn run(spec: &KernelSpec, cfg: &GpuConfig) -> (TimedOutput, Vec<u8>) {
    let mut mem = spec.memory.clone();
    let out = run_timed(&spec.program, spec.launch, &mut mem, cfg);
    (out, mem.as_bytes().to_vec())
}
