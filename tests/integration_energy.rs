//! Cross-crate energy telemetry: the integer energy-event timeline must
//! be **bit-identical** across the whole determinism matrix (threads ×
//! partitions × event-driven), conserve its events against the run's
//! activity counters, and — once priced by the calibrated model — move
//! in the right direction when the memory knobs move.
//!
//! Pricing happens strictly at the reporting layer (`EnergyWeights` over
//! integer counts), so the first two properties are exact equalities,
//! not tolerances.

use st2::prelude::*;
use st2::telemetry::{EnergySummary, EnergyWeights};

fn spec_by_name(name: &str) -> KernelSpec {
    suite(Scale::Test)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("suite kernel {name} missing"))
}

/// A starved memory subsystem sharded across `parts` L2 partitions —
/// the same shape the determinism suite uses, so the energy matrix
/// covers the identical configurations.
fn tight_partitioned_cfg(parts: u32) -> GpuConfig {
    GpuConfig::scaled(4)
        .with_mshr_entries(4)
        .with_dram_bw(1)
        .with_l2_bw(parts)
        .with_l2_partitions(parts)
}

fn observe(spec: &KernelSpec, cfg: &GpuConfig) -> (TimedOutput, Telemetry) {
    let mut mem = spec.memory.clone();
    let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
    let out = run_timed_with(
        &spec.program,
        spec.launch,
        &mut mem,
        cfg,
        RunOptions::with_telemetry(&mut tele),
    );
    (out, tele)
}

/// Sums one energy-series column over all intervals. The per-interval
/// values are integer-valued deltas stored as exact f64s, so the sum is
/// exact and must land back on the run's cumulative counter.
fn column_total(tele: &Telemetry, col: usize) -> u64 {
    tele.energy_series()
        .points()
        .iter()
        .map(|p| p.values[col] as u64)
        .sum()
}

#[test]
fn energy_timeline_is_bit_identical_across_the_matrix() {
    // {1,2,4} threads × {1,4} partitions × event-driven on/off: the
    // energy timeline merges as pure integer sums, so every cell within
    // a partition count reproduces the serial step-everything reference
    // bit for bit.
    for name in ["pathfinder", "histo_K1"] {
        let spec = spec_by_name(name);
        for parts in [1u32, 4] {
            let base = tight_partitioned_cfg(parts);
            let (_, ref_tele) = observe(&spec, &base.with_event_driven(false).with_sim_threads(1));
            for ed in [false, true] {
                for threads in [1u32, 2, 4] {
                    let cfg = base.with_event_driven(ed).with_sim_threads(threads);
                    let (_, tele) = observe(&spec, &cfg);
                    assert_eq!(
                        tele.energy_series().points(),
                        ref_tele.energy_series().points(),
                        "{name}: energy timeline diverges at ed={ed} threads={threads} parts={parts}"
                    );
                }
            }
        }
    }
}

#[test]
fn energy_timeline_conserves_run_totals() {
    // Interval deltas must sum back to the run's cumulative activity —
    // the identity that makes the merged timeline a lossless shard of
    // the counters rather than a sampled approximation. SM-resident
    // cycles must cover every SM for the full run, parked iterations
    // included (the `replay_parked` credit).
    for name in ["pathfinder", "histo_K1", "sgemm"] {
        let spec = spec_by_name(name);
        for parts in [1u32, 4] {
            for threads in [1u32, 4] {
                let cfg = tight_partitioned_cfg(parts).with_sim_threads(threads);
                let (out, tele) = observe(&spec, &cfg);
                let a = &out.activity;
                let ctx = format!("{name} parts={parts} threads={threads}");
                assert_eq!(column_total(&tele, 0), a.dram_accesses, "{ctx}: DRAM fills");
                assert_eq!(column_total(&tele, 2), a.mshr_merges, "{ctx}: MSHR merges");
                assert_eq!(column_total(&tele, 3), a.xbar_hops, "{ctx}: crossbar hops");
                assert_eq!(
                    column_total(&tele, 4),
                    a.write_allocates,
                    "{ctx}: write-allocates"
                );
                assert_eq!(
                    column_total(&tele, 5),
                    a.warp_instructions,
                    "{ctx}: instructions"
                );
                assert_eq!(
                    column_total(&tele, 6),
                    u64::from(cfg.num_sms) * out.cycles,
                    "{ctx}: SM-resident cycles must cover every SM x every cycle"
                );
                assert_eq!(
                    column_total(&tele, 6),
                    tele.energy_sm_cycles(),
                    "{ctx}: timeline drops SM cycles against the integral"
                );
                // A crossbar only exists with multiple partitions.
                if parts == 1 {
                    assert_eq!(a.xbar_hops, 0, "{ctx}: hops counted without a crossbar");
                } else {
                    assert!(a.xbar_hops > 0, "{ctx}: sharded fills never hopped");
                }
            }
        }
    }
}

#[test]
fn starving_dram_bandwidth_raises_modeled_energy() {
    // Figure-7 direction check: halving `--dram-bw` on a starved config
    // lengthens the run, so background DRAM energy, queue-occupancy
    // energy and the static floor all grow — total modeled energy must
    // rise monotonically even though the fill *count* is bw-invariant.
    let spec = spec_by_name("sgemm");
    let weights = EnergyModel::characterized().interval_weights(1.2);
    let price = |dram_bw: u32| -> (u64, EnergySummary) {
        let cfg = GpuConfig::scaled(4)
            .with_mshr_entries(4)
            .with_l2_bw(2)
            .with_dram_bw(dram_bw);
        let (out, tele) = observe(&spec, &cfg);
        let mut profile = KernelProfile::capture(&tele, "sgemm", None);
        profile.attach_energy(&weights);
        (out.cycles, profile.energy.expect("priced summary"))
    };
    let (cycles_full, full) = price(2);
    let (cycles_half, half) = price(1);
    assert!(
        cycles_half > cycles_full,
        "halving DRAM bandwidth must cost cycles ({cycles_half} vs {cycles_full})"
    );
    assert!(
        half.total_nj > full.total_nj,
        "halving DRAM bandwidth must raise total energy ({} vs {} nJ)",
        half.total_nj,
        full.total_nj
    );
    assert!(
        half.dram_nj > full.dram_nj,
        "longer run must accrue more DRAM background energy ({} vs {} nJ)",
        half.dram_nj,
        full.dram_nj
    );
    assert!(
        half.static_nj > full.static_nj,
        "longer run must accrue more static energy ({} vs {} nJ)",
        half.static_nj,
        full.static_nj
    );
    assert!(full.total_nj > 0.0 && full.energy_per_instruction_pj > 0.0);
}

#[test]
fn sharding_the_l2_surfaces_crossbar_energy() {
    // The other figure-7 knob: the same kernel on 1 vs 4 partitions must
    // show zero vs nonzero crossbar-hop energy — partitioning is visible
    // in the component breakdown, not just in cycle counts.
    let spec = spec_by_name("pathfinder");
    let weights = EnergyModel::characterized().interval_weights(1.2);
    let price = |parts: u32| -> EnergySummary {
        let (_, tele) = observe(&spec, &tight_partitioned_cfg(parts));
        let mut profile = KernelProfile::capture(&tele, "pathfinder", None);
        profile.attach_energy(&weights);
        profile.energy.expect("priced summary")
    };
    let solo = price(1);
    let sharded = price(4);
    assert_eq!(solo.xbar_nj, 0.0, "single partition priced crossbar hops");
    assert!(
        sharded.xbar_nj > 0.0,
        "sharded fills must price crossbar-hop energy"
    );
}

#[test]
fn priced_profiles_round_trip_through_json() {
    // The v5 document carries the timeline and the priced summary
    // losslessly; a bare capture stays unpriced (`energy: None`).
    let spec = spec_by_name("pathfinder");
    let (_, tele) = observe(&spec, &tight_partitioned_cfg(4));
    let mut profile = KernelProfile::capture(&tele, "pathfinder", Some(&spec.program));
    assert!(profile.energy.is_none(), "capture must not price");
    assert!(
        !profile.energy_timeline.is_empty(),
        "capture must carry the energy timeline"
    );
    profile.attach_energy(&EnergyModel::characterized().interval_weights(1.2));
    let back = st2::telemetry::KernelProfile::from_json(&profile.to_json()).expect("parses");
    assert_eq!(back, profile, "energy fields must round-trip bit-exactly");
}

#[test]
fn power_track_prices_nonzero_watts_under_load() {
    // The per-interval power track pairs with the memory deep-dive rows:
    // every completed interval of a starved run draws nonzero watts and
    // the weights table exposes the clock it priced with.
    let spec = spec_by_name("histo_K1");
    let weights: EnergyWeights = EnergyModel::characterized().interval_weights(1.2);
    assert!((weights.clock_ghz - 1.2).abs() < 1e-12);
    let (_, tele) = observe(&spec, &tight_partitioned_cfg(1));
    let profile = KernelProfile::capture(&tele, "histo_K1", None);
    let track = profile.power_timeline(&weights);
    assert!(!track.is_empty(), "starved run produced no power intervals");
    assert!(
        track.iter().all(|(_, w)| *w > 0.0),
        "an interval priced zero watts under load"
    );
}
