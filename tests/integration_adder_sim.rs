//! Cross-crate integration: adders × predictors × simulator.
//!
//! These tests exercise paths that span crate boundaries: kernels
//! compiled with the ISA builder, executed by the simulator, feeding
//! adder-event streams into the core crate's speculation machinery.

use st2::core::dse::{carry_correlation, fig3_schemes, fig5_design_points, sweep};
use st2::prelude::*;

fn collect_records(specs: &[KernelSpec]) -> Vec<AddRecord> {
    let mut records = Vec::new();
    for spec in specs {
        let mut mem = spec.memory.clone();
        let out = run_functional(
            &spec.program,
            spec.launch,
            &mut mem,
            &FunctionalOptions {
                collect_records: true,
                ..Default::default()
            },
        );
        spec.verify(&mem).expect("kernel verifies");
        records.extend(out.records);
    }
    records
}

#[test]
fn fig3_correlation_ordering_on_real_kernels() {
    // The paper's Fig. 3 ordering must hold on real kernel streams:
    // temporal-only correlation is weak; adding the PC (spatial axis)
    // makes it strong; sharing across lanes keeps it strong.
    let specs = vec![
        st2::kernels::pathfinder::build(Scale::Test),
        st2::kernels::histogram::build(Scale::Test),
        st2::kernels::sad::build(Scale::Test),
    ];
    let records = collect_records(&specs);
    assert!(records.len() > 50_000, "need a substantial stream");

    let [gtid, fullpc_gtid, fullpc_ltid] = fig3_schemes();
    let r_t = carry_correlation(&records, gtid).match_rate();
    let r_st = carry_correlation(&records, fullpc_gtid).match_rate();
    let r_shared = carry_correlation(&records, fullpc_ltid).match_rate();

    assert!(
        r_st > r_t + 0.05,
        "spatio-temporal {r_st:.3} must clearly beat temporal-only {r_t:.3}"
    );
    assert!(
        r_st > 0.75,
        "per-PC carry correlation should be strong, got {r_st:.3}"
    );
    assert!(
        r_shared > 0.7,
        "lane-shared correlation should remain strong, got {r_shared:.3}"
    );
}

#[test]
fn fig5_ladder_on_real_kernels() {
    let specs = vec![
        st2::kernels::pathfinder::build(Scale::Test),
        st2::kernels::mergesort::build_k2(Scale::Test),
    ];
    let records = collect_records(&specs);
    let results = sweep(&records, &fig5_design_points());
    let rate = |label: &str| {
        results
            .iter()
            .find(|(c, _)| c.label() == label)
            .unwrap_or_else(|| panic!("missing {label}"))
            .1
            .misprediction_rate()
    };

    let st2 = rate("Ltid+Prev+ModPC4+Peek");
    let valhalla = rate("VaLHALLA");
    let static_zero = rate("staticZero");
    assert!(st2 < valhalla, "ST2 {st2:.3} !< VaLHALLA {valhalla:.3}");
    assert!(
        st2 < static_zero,
        "ST2 {st2:.3} !< staticZero {static_zero:.3}"
    );
    assert!(
        rate("VaLHALLA+Peek") <= valhalla,
        "retrofitting Peek must not hurt VaLHALLA"
    );
    assert!(
        rate("Prev+ModPC4+Peek") <= rate("Prev+Peek") + 0.01,
        "PC disambiguation must not hurt"
    );
    assert!(
        st2 < 0.25,
        "final design miss rate {st2:.3} implausibly high"
    );
}

#[test]
fn speculation_is_invisible_to_results() {
    // Identical output memory for baseline and ST² timed runs, for a
    // divergent, memory-heavy kernel.
    let spec = st2::kernels::sortnets::build_k1(Scale::Test);
    let mut base_mem = spec.memory.clone();
    let mut st2_mem = spec.memory.clone();
    let cfg = GpuConfig::scaled(2);
    let base = run_timed(&spec.program, spec.launch, &mut base_mem, &cfg);
    let st2 = run_timed(&spec.program, spec.launch, &mut st2_mem, &cfg.with_st2());
    assert_eq!(base_mem.as_bytes(), st2_mem.as_bytes());
    assert_eq!(
        base.activity.warp_instructions,
        st2.activity.warp_instructions
    );
    assert!(st2.activity.adder.ops > 0);
    assert!(st2.cycles >= base.cycles, "stalls can only add cycles");
}

#[test]
fn functional_and_timed_agree_across_suite_sample() {
    for spec in [
        st2::kernels::kmeans::build(Scale::Test),
        st2::kernels::qrng::build_k2(Scale::Test),
        st2::kernels::btree::build_k1(Scale::Test),
    ] {
        let mut m1 = spec.memory.clone();
        let f = run_functional(
            &spec.program,
            spec.launch,
            &mut m1,
            &FunctionalOptions::default(),
        );
        let mut m2 = spec.memory.clone();
        let t = run_timed(&spec.program, spec.launch, &mut m2, &GpuConfig::scaled(2));
        assert_eq!(
            m1.as_bytes(),
            m2.as_bytes(),
            "{} memories differ",
            spec.name
        );
        assert_eq!(
            f.mix.total(),
            t.activity.mix.total(),
            "{} instruction counts differ",
            spec.name
        );
        spec.verify(&m2).expect("verifies");
    }
}

#[test]
fn crf_hardware_matches_behavioural_table_for_st2_config() {
    // The 16×224-bit CRF and the behavioural Ltid+ModPC4 history table
    // must make identical predictions on an arbitrary stream.
    use st2::core::history::HistoryTable;
    use st2::core::{PcIndex, ThreadKey};

    let mut crf = CarryRegisterFile::new();
    let mut table = HistoryTable::new(PcIndex::ModPc(4), ThreadKey::Ltid, 1);
    let mut state = 0xDEADBEEFu64;
    for _ in 0..5_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pc = (state >> 5) as u32 & 0xFFFF;
        let lane = (state >> 21) as u32 & 31;
        let carries = (state >> 26) & 0x7F;
        let ctx = OpContext {
            pc,
            gtid: lane + 32 * ((state >> 40) as u32 & 7),
            ltid: lane,
        };
        assert_eq!(
            crf.predict(pc, lane),
            table.predict(&ctx) & 0x7F,
            "divergence at pc={pc} lane={lane}"
        );
        crf.write(pc, lane, carries);
        table.record(&ctx, carries, 7);
    }
}
