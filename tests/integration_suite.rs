//! Whole-suite integration: all 23 kernels execute, verify against their
//! CPU references, and produce sane statistics under both engines.

use st2::prelude::*;

#[test]
fn all_23_kernels_verify_under_the_functional_engine() {
    let specs = suite(Scale::Test);
    assert_eq!(specs.len(), 23);
    for spec in specs {
        let mut mem = spec.memory.clone();
        let out = run_functional(
            &spec.program,
            spec.launch,
            &mut mem,
            &FunctionalOptions::default(),
        );
        spec.verify(&mem)
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
        assert!(out.mix.total() > 0, "{} executed nothing", spec.name);
        assert!(
            out.mix.arithmetic_fraction() > 0.05,
            "{} has implausibly low arithmetic fraction",
            spec.name
        );
    }
}

#[test]
fn most_kernels_are_arithmetic_heavy_like_fig1() {
    // Paper Fig. 1: 21 of 23 kernels have > 20 % ALU+FPU dynamic
    // instructions. Our ISA folds address arithmetic into visible adds,
    // so the bar is comfortably cleared; assert the qualitative claim.
    let mut heavy = 0;
    for spec in suite(Scale::Test) {
        let mut mem = spec.memory.clone();
        let out = run_functional(
            &spec.program,
            spec.launch,
            &mut mem,
            &FunctionalOptions::default(),
        );
        use st2::isa::InstClass::*;
        let alu_fpu: f64 = [AluAdd, AluOther, FpuAdd, FpuOther]
            .iter()
            .map(|&c| out.mix.fraction(c))
            .sum();
        if alu_fpu > 0.20 {
            heavy += 1;
        }
    }
    assert!(
        heavy >= 19,
        "expected most kernels arithmetic-heavy, got {heavy}/23"
    );
}

#[test]
fn st2_misprediction_rates_are_low_across_kernel_sample() {
    // Fig. 6's qualitative claim: the final design's per-kernel thread
    // misprediction rate is low (average 9 % in the paper).
    let cfg = GpuConfig::scaled(2).with_st2();
    let mut rates = Vec::new();
    for spec in [
        st2::kernels::pathfinder::build(Scale::Test),
        st2::kernels::sad::build(Scale::Test),
        st2::kernels::histogram::build(Scale::Test),
        st2::kernels::walsh::build_k2(Scale::Test),
        st2::kernels::sortnets::build_k2(Scale::Test),
    ] {
        let mut mem = spec.memory.clone();
        let out = run_timed(&spec.program, spec.launch, &mut mem, &cfg);
        spec.verify(&mem).expect("verifies");
        rates.push(out.activity.adder.misprediction_rate());
    }
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(
        avg < 0.30,
        "average thread miss rate {avg:.3} too high: {rates:?}"
    );
    // Recompute wave depth matches the paper's scale (avg 1.94).
    // (Checked per-kernel in the harness; here just bounded.)
}

#[test]
fn performance_overhead_is_small_on_mixed_kernels() {
    // §VI: ST² execution time within a fraction of a percent on average
    // (worst kernel 3.5 %). Memory- and control-rich kernels absorb the
    // rare stalls; assert a conservative bound on this sample.
    let base_cfg = GpuConfig::scaled(2);
    let st2_cfg = base_cfg.with_st2();
    let mut slowdowns = Vec::new();
    for spec in [
        st2::kernels::btree::build_k1(Scale::Test),
        st2::kernels::kmeans::build(Scale::Test),
        st2::kernels::mriq::build(Scale::Test),
        st2::kernels::histogram::build(Scale::Test),
    ] {
        let mut m1 = spec.memory.clone();
        let base = run_timed(&spec.program, spec.launch, &mut m1, &base_cfg);
        let mut m2 = spec.memory.clone();
        let st2 = run_timed(&spec.program, spec.launch, &mut m2, &st2_cfg);
        slowdowns.push(st2.cycles as f64 / base.cycles as f64 - 1.0);
    }
    let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    assert!(
        avg < 0.08,
        "average ST2 slowdown {avg:.4} too high: {slowdowns:?}"
    );
}
