//! Cross-crate determinism: the parallel timed driver
//! (`GpuConfig::sim_threads > 1`) must be **bit-identical** to the serial
//! one — same cycles, same activity counters, same memory, same merged
//! telemetry counters — on real suite kernels, baseline and ST² alike.
//!
//! This is the contract that makes `sim_threads` a pure wall-clock knob:
//! every figure and table of the reproduction is allowed to run
//! parallel without a tolerance budget.

use st2::prelude::*;

/// A cross-section of the suite: memory-bound (pathfinder), shared-memory
/// heavy (histo_K1), branch-structured (sortNets_K1) and ALU-bound
/// (qrng_K1).
const KERNELS: [&str; 4] = ["pathfinder", "histo_K1", "sortNets_K1", "qrng_K1"];

fn spec_by_name(name: &str) -> KernelSpec {
    suite(Scale::Test)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("suite kernel {name} missing"))
}

fn timed(spec: &KernelSpec, cfg: &GpuConfig) -> (TimedOutput, Vec<u8>) {
    let mut mem = spec.memory.clone();
    let out = run_timed(&spec.program, spec.launch, &mut mem, cfg);
    (out, mem.as_bytes().to_vec())
}

/// A deliberately starved memory subsystem: a tiny MSHR file plus
/// single-request L2/DRAM bandwidth keeps the in-flight tracking, FIFO
/// queueing and throttle back-pressure paths hot in every drain.
fn tight_memory_cfg() -> GpuConfig {
    GpuConfig::scaled(4)
        .with_mshr_entries(4)
        .with_dram_bw(1)
        .with_l2_bw(1)
}

/// [`tight_memory_cfg`] sharded across `parts` L2 partitions. `l2_bw`
/// scales with the partition count only because `validate` requires at
/// least one L2 slot per partition — each partition still owns exactly
/// one request per cycle, so every lane stays starved.
fn tight_partitioned_cfg(parts: u32) -> GpuConfig {
    GpuConfig::scaled(4)
        .with_mshr_entries(4)
        .with_dram_bw(1)
        .with_l2_bw(parts)
        .with_l2_partitions(parts)
}

#[test]
fn partitioned_runs_are_bit_identical_across_threads() {
    // The partitions x threads matrix: any partition count must be a
    // pure topology knob for `sim_threads` — partition drains are
    // ordered by partition index in both drivers, so 1/2/4 workers see
    // the same per-partition arbiter state.
    for name in KERNELS {
        let spec = spec_by_name(name);
        for parts in [1u32, 2, 4] {
            let cfg = tight_partitioned_cfg(parts);
            let (serial, mem_serial) = timed(&spec, &cfg.with_sim_threads(1));
            for threads in [2u32, 4] {
                let (parallel, mem_parallel) = timed(&spec, &cfg.with_sim_threads(threads));
                assert_eq!(
                    serial.cycles, parallel.cycles,
                    "{name}: cycles diverge at {parts} partitions / {threads} threads"
                );
                assert_eq!(
                    serial.activity, parallel.activity,
                    "{name}: activity diverges at {parts} partitions / {threads} threads"
                );
                assert_eq!(
                    mem_serial, mem_parallel,
                    "{name}: memory diverges at {parts} partitions / {threads} threads"
                );
            }
            // Partitioned results still satisfy the CPU reference.
            let mut mem = spec.memory.clone();
            let _ = run_timed(
                &spec.program,
                spec.launch,
                &mut mem,
                &cfg.with_sim_threads(2),
            );
            spec.verify(&mem)
                .unwrap_or_else(|e| panic!("{name} failed verification: {e}"));
        }
    }
}

#[test]
fn single_partition_reproduces_pre_crossbar_counters() {
    // Golden equivalence: with `l2_partitions = 1` the crossbar is
    // bypassed and the sharded memory subsystem must reproduce the
    // monolithic pre-refactor model bit-for-bit. These constants were
    // captured on the starved config before the partition refactor
    // landed; a drift here means the P=1 degenerate path changed
    // behaviour, not just shape.
    struct Golden {
        name: &'static str,
        cycles: u64,
        warp_instructions: u64,
        l1_accesses: u64,
        l1_misses: u64,
        l2_accesses: u64,
        l2_misses: u64,
        dram_accesses: u64,
        mshr_merges: u64,
        mem_throttle: u64,
        bw_starved_cycles: u64,
        noc_flits: u64,
        fill_count: u64,
        fill_p50: u64,
        fill_p95: u64,
        fill_max: u64,
        mshr_occupied_cycles: u64,
        mshr_wait_cycles: u64,
    }
    let goldens = [
        Golden {
            name: "pathfinder",
            cycles: 8975,
            warp_instructions: 2240,
            l1_accesses: 68,
            l1_misses: 68,
            l2_accesses: 68,
            l2_misses: 68,
            dram_accesses: 68,
            mshr_merges: 0,
            mem_throttle: 0,
            bw_starved_cycles: 38,
            noc_flits: 340,
            fill_count: 68,
            fill_p50: 423,
            fill_p95: 423,
            fill_max: 423,
            mshr_occupied_cycles: 26928,
            mshr_wait_cycles: 0,
        },
        Golden {
            name: "histo_K1",
            cycles: 43200,
            warp_instructions: 1956,
            l1_accesses: 8320,
            l1_misses: 384,
            l2_accesses: 384,
            l2_misses: 384,
            dram_accesses: 384,
            mshr_merges: 0,
            mem_throttle: 654,
            bw_starved_cycles: 38,
            noc_flits: 1920,
            fill_count: 384,
            fill_p50: 1023,
            fill_p95: 3778,
            fill_max: 3778,
            mshr_occupied_cycles: 161323,
            mshr_wait_cycles: 249419,
        },
    ];
    let cfg = tight_partitioned_cfg(1).with_sim_threads(1);
    assert_eq!(
        cfg,
        tight_memory_cfg().with_l2_partitions(1).with_sim_threads(1),
        "tight_partitioned_cfg(1) must equal the pre-refactor starved config"
    );
    for g in &goldens {
        let spec = spec_by_name(g.name);
        let mut mem = spec.memory.clone();
        let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
        let out = run_timed_with(
            &spec.program,
            spec.launch,
            &mut mem,
            &cfg,
            RunOptions::with_telemetry(&mut tele),
        );
        let name = g.name;
        let a = &out.activity;
        assert_eq!(out.cycles, g.cycles, "{name}: cycles");
        assert_eq!(a.warp_instructions, g.warp_instructions, "{name}: insts");
        assert_eq!(a.l1_accesses, g.l1_accesses, "{name}: l1_accesses");
        assert_eq!(a.l1_misses, g.l1_misses, "{name}: l1_misses");
        assert_eq!(a.l2_accesses, g.l2_accesses, "{name}: l2_accesses");
        assert_eq!(a.l2_misses, g.l2_misses, "{name}: l2_misses");
        assert_eq!(a.dram_accesses, g.dram_accesses, "{name}: dram_accesses");
        assert_eq!(a.mshr_merges, g.mshr_merges, "{name}: mshr_merges");
        assert_eq!(a.mem_throttle, g.mem_throttle, "{name}: mem_throttle");
        assert_eq!(
            a.bw_starved_cycles, g.bw_starved_cycles,
            "{name}: bw_starved_cycles"
        );
        assert_eq!(a.noc_flits, g.noc_flits, "{name}: noc_flits");
        assert_eq!(
            a.xbar_wait_cycles, 0,
            "{name}: single partition must never queue at the crossbar"
        );
        let r = tele.registry();
        let fill = r
            .histogram_by_name("mem.fill_latency")
            .expect("fill histogram");
        assert_eq!(fill.count(), g.fill_count, "{name}: fill count");
        assert_eq!(fill.p50(), g.fill_p50, "{name}: fill p50");
        assert_eq!(fill.p95(), g.fill_p95, "{name}: fill p95");
        assert_eq!(fill.max(), g.fill_max, "{name}: fill max");
        assert_eq!(
            tele.mem_occupied_cycles(),
            g.mshr_occupied_cycles,
            "{name}: MSHR occupancy integral"
        );
        assert_eq!(
            r.counter_by_name("mem.mshr_wait_cycles"),
            Some(g.mshr_wait_cycles),
            "{name}: mshr_wait_cycles"
        );
        assert_eq!(
            r.counter_by_name("mem.xbar_wait_cycles"),
            Some(0),
            "{name}: xbar_wait_cycles"
        );
    }
}

#[test]
fn parallel_timed_runs_are_bit_identical_to_serial() {
    for name in KERNELS {
        let spec = spec_by_name(name);
        for cfg in [
            GpuConfig::scaled(4),
            GpuConfig::scaled(4).with_st2(),
            tight_memory_cfg(),
        ] {
            let (serial, mem_serial) = timed(&spec, &cfg.with_sim_threads(1));
            for threads in [2u32, 4] {
                let (parallel, mem_parallel) = timed(&spec, &cfg.with_sim_threads(threads));
                assert_eq!(
                    serial.cycles, parallel.cycles,
                    "{name}: cycles diverge at {threads} threads"
                );
                assert_eq!(
                    serial.activity, parallel.activity,
                    "{name}: activity counters diverge at {threads} threads"
                );
                assert_eq!(
                    mem_serial, mem_parallel,
                    "{name}: memory diverges at {threads} threads"
                );
            }
            // Parallel results satisfy the kernel's CPU reference too.
            let mut mem = spec.memory.clone();
            let _ = run_timed(
                &spec.program,
                spec.launch,
                &mut mem,
                &cfg.with_sim_threads(2),
            );
            spec.verify(&mem)
                .unwrap_or_else(|e| panic!("{name} failed verification: {e}"));
        }
    }
}

#[test]
fn parallel_profiles_are_bit_identical_to_serial() {
    for name in KERNELS {
        let spec = spec_by_name(name);
        for cfg in [
            GpuConfig::scaled(4),
            GpuConfig::scaled(4).with_st2(),
            tight_memory_cfg(),
        ] {
            let observe = |threads: u32| {
                let mut mem = spec.memory.clone();
                let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
                let out = run_timed_with(
                    &spec.program,
                    spec.launch,
                    &mut mem,
                    &cfg.with_sim_threads(threads),
                    RunOptions::with_telemetry(&mut tele),
                );
                (
                    out,
                    KernelProfile::capture(&tele, name, Some(&spec.program)),
                )
            };
            let (out1, serial) = observe(1);
            // Suite programs never run off the end of their instruction
            // stream; a nonzero count means a control-flow bug.
            debug_assert!(
                serial.total().fetch_oob == 0,
                "{name}: out-of-range fetches detected"
            );
            assert!(serial.reconciles(), "{name}: serial profile unbalanced");
            for sm in &serial.sms {
                assert_eq!(
                    sm.slots,
                    out1.cycles * u64::from(cfg.issue_width),
                    "{name}: slot accounting diverged from cycles x issue_width"
                );
            }
            for threads in [2u32, 4] {
                let (_, parallel) = observe(threads);
                // Per-PC hotspot tables, per-SM stall-reason counters and
                // the occupancy timeline all merge with pure integer
                // sums, so the whole profile is bit-identical.
                assert_eq!(
                    serial, parallel,
                    "{name}: profile diverges at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn memory_bound_kernel_reacts_to_memory_knobs() {
    // The memory model must be load-bearing on a real suite kernel:
    // sgemm's tiled loads overlap on shared lines (nonzero MSHR merges)
    // and starving DRAM bandwidth costs cycles rather than being
    // absorbed by magic fixed latencies.
    let spec = spec_by_name("sgemm");
    let base = GpuConfig::scaled(4);
    let (full, _) = timed(&spec, &base);
    assert!(
        full.activity.mshr_merges > 0,
        "sgemm never merged a miss into an in-flight fill"
    );
    let (starved, _) = timed(&spec, &base.with_dram_bw(1).with_l2_bw(1));
    assert!(
        starved.cycles > full.cycles,
        "cutting DRAM bandwidth did not cost cycles ({} vs {})",
        starved.cycles,
        full.cycles
    );
}

#[test]
fn memory_telemetry_is_bit_identical_across_threads() {
    // The request-lifecycle channels — log2 latency histograms, the MSHR
    // occupancy / L2 / DRAM interval timeline, and the queue-wait
    // counters — merge with pure integer sums, so a starved memory
    // subsystem must report bit-identical telemetry at any thread count.
    let cfg = tight_memory_cfg();
    for name in KERNELS {
        let spec = spec_by_name(name);
        let observe = |threads: u32| {
            let mut mem = spec.memory.clone();
            let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
            run_timed_with(
                &spec.program,
                spec.launch,
                &mut mem,
                &cfg.with_sim_threads(threads),
                RunOptions::with_telemetry(&mut tele),
            );
            tele
        };
        let tele1 = observe(1);
        for threads in [2u32, 4] {
            let tele_n = observe(threads);
            assert_eq!(
                tele1.registry().histograms(),
                tele_n.registry().histograms(),
                "{name}: latency histograms diverge at {threads} threads"
            );
            assert_eq!(
                tele1.mem_series().points(),
                tele_n.mem_series().points(),
                "{name}: memory timeline diverges at {threads} threads"
            );
            assert_eq!(
                tele1.mem_occupied_cycles(),
                tele_n.mem_occupied_cycles(),
                "{name}: MSHR occupancy integral diverges at {threads} threads"
            );
            assert_eq!(
                tele1.energy_series().points(),
                tele_n.energy_series().points(),
                "{name}: energy timeline diverges at {threads} threads"
            );
        }
        // The starved config actually exercises the channels: fills
        // happened and their latency distribution is observable.
        let fill = tele1
            .registry()
            .histogram_by_name("mem.fill_latency")
            .expect("fill latency histogram registered");
        assert!(fill.count() > 0, "{name}: no fills recorded");
        assert!(fill.p95() > 0, "{name}: fill p95 is zero under starvation");
    }
}

#[test]
fn event_driven_fast_forward_is_bit_identical() {
    // The wake calendars must be invisible in every observable: the
    // event_driven on/off × memory-calendar on/off × sim_threads ×
    // l2_partitions matrix reproduces the same cycles, activity
    // counters, results memory, latency histograms, memory timeline and
    // per-PC profiles — both knobs are purely wall-clock, like
    // `sim_threads`. (With event_driven off the memory calendar is
    // never consulted, so only the `mc = true` leg is run there.)
    for name in ["pathfinder", "histo_K1"] {
        let spec = spec_by_name(name);
        for parts in [1u32, 4] {
            let base = tight_partitioned_cfg(parts);
            let observe = |cfg: &GpuConfig| {
                let mut mem = spec.memory.clone();
                let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
                let out = run_timed_with(
                    &spec.program,
                    spec.launch,
                    &mut mem,
                    cfg,
                    RunOptions::with_telemetry(&mut tele),
                );
                let profile = KernelProfile::capture(&tele, name, Some(&spec.program));
                (out, mem.as_bytes().to_vec(), tele, profile)
            };
            let (ref_out, ref_mem, ref_tele, ref_profile) =
                observe(&base.with_event_driven(false).with_sim_threads(1));
            for (ed, mc) in [(false, true), (true, false), (true, true)] {
                for threads in [1u32, 2, 4] {
                    let cfg = base
                        .with_event_driven(ed)
                        .with_mem_calendar(mc)
                        .with_sim_threads(threads);
                    let (out, mem, tele, profile) = observe(&cfg);
                    let ctx = format!("{name}: ed={ed} mc={mc} threads={threads} parts={parts}");
                    assert_eq!(out.cycles, ref_out.cycles, "{ctx}: cycles");
                    assert_eq!(out.activity, ref_out.activity, "{ctx}: activity");
                    assert_eq!(mem, ref_mem, "{ctx}: results memory");
                    assert_eq!(
                        tele.registry().counters(),
                        ref_tele.registry().counters(),
                        "{ctx}: telemetry counters"
                    );
                    assert_eq!(
                        tele.registry().histograms(),
                        ref_tele.registry().histograms(),
                        "{ctx}: latency histograms"
                    );
                    assert_eq!(
                        tele.mem_series().points(),
                        ref_tele.mem_series().points(),
                        "{ctx}: memory timeline"
                    );
                    assert_eq!(
                        tele.mem_occupied_cycles(),
                        ref_tele.mem_occupied_cycles(),
                        "{ctx}: MSHR occupancy integral"
                    );
                    // Parked SMs credit their slept cycles through
                    // `replay_parked`, so the integer energy timeline —
                    // SM-resident cycles included — must not see the
                    // calendar either.
                    assert_eq!(
                        tele.energy_series().points(),
                        ref_tele.energy_series().points(),
                        "{ctx}: energy timeline"
                    );
                    assert_eq!(
                        tele.energy_sm_cycles(),
                        ref_tele.energy_sm_cycles(),
                        "{ctx}: SM-resident cycle integral"
                    );
                    assert_eq!(
                        tele.series().column("adder.accuracy"),
                        ref_tele.series().column("adder.accuracy"),
                        "{ctx}: accuracy series"
                    );
                    assert_eq!(profile, ref_profile, "{ctx}: profile");
                    if !ed {
                        assert_eq!(out.sm_sleep_cycles, 0, "{ctx}: slept with knob off");
                        assert_eq!(out.ff_wakeups, 0, "{ctx}: woke with knob off");
                    }
                    if !ed || !mc {
                        assert_eq!(
                            out.mem_skip_cycles, 0,
                            "{ctx}: memory calendar skipped with knob off"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn starved_config_engages_the_wake_calendar() {
    // Equivalence alone could hold vacuously (nothing ever sleeps);
    // this pins that a memory-starved config actually parks SMs on the
    // calendar and wakes them, while the step-everything path reports
    // zero and the same cycle count.
    let spec = spec_by_name("pathfinder");
    let cfg = tight_memory_cfg();
    assert!(cfg.event_driven, "fast-forward must default on");
    let (on, _) = timed(&spec, &cfg);
    assert!(
        on.sm_sleep_cycles > 0,
        "starved run never parked an SM on the wake calendar"
    );
    assert!(on.ff_wakeups > 0, "parked SMs were never woken");
    let (off, _) = timed(&spec, &cfg.with_event_driven(false));
    assert_eq!(off.sm_sleep_cycles, 0);
    assert_eq!(off.ff_wakeups, 0);
    assert_eq!(on.cycles, off.cycles, "fast-forward changed timing");
    assert_eq!(on.activity, off.activity, "fast-forward changed activity");
}

#[test]
fn starved_config_engages_the_memory_calendar() {
    // Same vacuity guard for the memory side: on a starved config most
    // cycles have no due fill and no fresh request, so the calendar
    // must actually skip drain/retire rounds — while the escape hatch
    // (`mem_calendar = false`) reports zero skips and identical timing.
    let spec = spec_by_name("pathfinder");
    let cfg = tight_memory_cfg();
    assert!(cfg.mem_calendar, "memory calendar must default on");
    for threads in [1u32, 2] {
        let (on, _) = timed(&spec, &cfg.with_sim_threads(threads));
        assert!(
            on.mem_skip_cycles > 0,
            "threads={threads}: starved run never skipped a drain round"
        );
        let (off, _) = timed(
            &spec,
            &cfg.with_mem_calendar(false).with_sim_threads(threads),
        );
        assert_eq!(
            off.mem_skip_cycles, 0,
            "threads={threads}: knob off skipped"
        );
        assert_eq!(on.cycles, off.cycles, "threads={threads}: timing changed");
        assert_eq!(
            on.activity, off.activity,
            "threads={threads}: activity changed"
        );
        assert_eq!(on.sm_sleep_cycles, off.sm_sleep_cycles);
        assert_eq!(on.ff_wakeups, off.ff_wakeups);
    }
}

#[test]
fn sleep_accounting_is_exact_at_termination_while_parked() {
    // A starved run ends with most SMs parked (each SM that drains its
    // last block goes non-resident and sleeps until the global exit):
    // the exit-time replay must credit slept cycles only up to the
    // final cycle, never past it. Two integrals pin that from both
    // sides: the driver-side activity split and the telemetry-side
    // SM-resident energy integral each must equal exactly
    // `num_sms × cycles`.
    let spec = spec_by_name("pathfinder");
    for cfg in [
        tight_memory_cfg(),
        tight_memory_cfg().with_mem_calendar(false),
    ] {
        for threads in [1u32, 2] {
            let cfg = cfg.with_sim_threads(threads);
            let mut mem = spec.memory.clone();
            let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
            let out = run_timed_with(
                &spec.program,
                spec.launch,
                &mut mem,
                &cfg,
                RunOptions::with_telemetry(&mut tele),
            );
            let ctx = format!("mc={} threads={threads}", cfg.mem_calendar);
            assert!(
                out.sm_sleep_cycles > 0,
                "{ctx}: run never parked an SM — the exit replay is untested"
            );
            let expect = u64::from(cfg.num_sms) * out.cycles;
            assert_eq!(
                out.activity.active_sm_cycles + out.activity.idle_sm_cycles,
                expect,
                "{ctx}: driver activity split drifted from num_sms × cycles"
            );
            assert_eq!(
                tele.energy_sm_cycles(),
                expect,
                "{ctx}: SM-resident energy integral drifted from num_sms × cycles"
            );
        }
    }
}

#[test]
fn parallel_telemetry_matches_serial_aggregates() {
    for name in KERNELS {
        let spec = spec_by_name(name);
        let cfg = GpuConfig::scaled(4).with_st2();
        let observe = |threads: u32| {
            let mut mem = spec.memory.clone();
            let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
            let out = run_timed_with(
                &spec.program,
                spec.launch,
                &mut mem,
                &cfg.with_sim_threads(threads),
                RunOptions::with_telemetry(&mut tele),
            );
            (out, tele)
        };
        let (out1, tele1) = observe(1);
        let (out2, tele2) = observe(2);
        assert_eq!(out1.cycles, out2.cycles, "{name}: cycles diverge");
        assert_eq!(out1.activity, out2.activity, "{name}: activity diverges");
        assert_eq!(
            tele1.registry().counters(),
            tele2.registry().counters(),
            "{name}: telemetry counters diverge"
        );
        // The adder-accuracy series is recomputed from integer-valued op
        // and mispredict sums at the merge, so it is bit-exact. (The IPC
        // column is only mathematically equal — a sum of per-SM ratios —
        // and is deliberately not compared bit-for-bit here.)
        assert_eq!(
            tele1.series().column("adder.accuracy"),
            tele2.series().column("adder.accuracy"),
            "{name}: accuracy series diverges"
        );
        assert_eq!(
            tele1.cycles(),
            tele2.cycles(),
            "{name}: final cycles diverge"
        );
    }
}
