//! Cross-crate integration: telemetry × simulator × exporters.
//!
//! Covers the observability acceptance points: the Chrome trace parses
//! back as JSON with the expected schema, the JSONL dump carries the
//! named metrics including a non-empty interval series of adder
//! prediction accuracy, and telemetry (enabled or disabled) never
//! changes simulation results.

use proptest::prelude::*;
use st2::prelude::*;
use st2::telemetry::{chrome, json, jsonl, Telemetry, TelemetryConfig};

fn traced_run(spec: &KernelSpec, cfg: &GpuConfig) -> (Telemetry, TimedOutput, Vec<u8>) {
    let mut tele = Telemetry::for_run(cfg.num_sms as usize, TelemetryConfig::default());
    let mut mem = spec.memory.clone();
    let out = run_timed_with_telemetry(&spec.program, spec.launch, &mut mem, cfg, &mut tele);
    (tele, out, mem.as_bytes().to_vec())
}

#[test]
fn chrome_trace_parses_and_interval_series_is_nonempty() {
    let spec = st2::kernels::pathfinder::build(Scale::Test);
    let cfg = GpuConfig::scaled(2).with_st2();
    let (tele, out, _) = traced_run(&spec, &cfg);

    // Chrome trace: valid JSON, traceEvents array, every event carries a
    // phase, and the cycle span matches the run.
    let trace = chrome::export(&tele, spec.name);
    let v = json::parse(&trace).expect("Chrome trace is valid JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    assert!(events.len() > 100, "a real run produces many events");
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|p| p.as_str())
            .expect("every event has a phase");
        assert!(
            matches!(ph, "M" | "X" | "i" | "C" | "b" | "n" | "e"),
            "unexpected phase {ph:?}"
        );
        // Async fill milestones ("n") and ends ("e") may land past the
        // final cycle: a store's line fill can still be in flight when
        // the last warp retires.
        if !matches!(ph, "M" | "n" | "e") {
            let ts = e.get("ts").and_then(json::Value::as_f64).expect("ts");
            assert!(ts <= out.cycles as f64, "event past the end of the run");
        }
    }

    // Request lifetimes ride along as async spans: every begin has a
    // matching end on the same id, and the memory timeline's counter
    // tracks are present.
    let phase_count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
            .count()
    };
    assert!(phase_count("b") > 0, "run produces fill spans");
    assert_eq!(phase_count("b"), phase_count("e"), "spans pair up");
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name").and_then(|n| n.as_str()) == Some("mem.mshr_occupied_cycles")
        }),
        "memory timeline exported as counter track"
    );

    // Interval series: adder prediction accuracy over time, non-empty,
    // values in [0, 1].
    let acc = tele
        .series()
        .column("adder.accuracy")
        .expect("accuracy column exists");
    assert!(!acc.is_empty(), "interval series must be non-empty");
    assert!(acc.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));

    // JSONL: every line parses; ≥5 named metrics; the accuracy series is
    // present with its points.
    let dump = jsonl::export(&tele, spec.name);
    let mut metric_names = Vec::new();
    let mut saw_series = false;
    for line in dump.lines() {
        let v = json::parse(line).expect("JSONL line parses");
        let ty = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
        if matches!(ty, "counter" | "gauge" | "histogram") {
            metric_names.push(v.get("name").unwrap().as_str().unwrap().to_string());
        }
        if ty == "series" && v.get("name").and_then(|n| n.as_str()) == Some("adder.accuracy") {
            let points = v.get("points").unwrap().as_array().unwrap();
            assert!(!points.is_empty(), "accuracy series has points");
            saw_series = true;
        }
    }
    assert!(
        saw_series,
        "JSONL carries the adder.accuracy interval series"
    );
    metric_names.sort();
    metric_names.dedup();
    assert!(
        metric_names.len() >= 5,
        "JSONL names at least 5 metrics, got {metric_names:?}"
    );
    for required in [
        "adder.ops",
        "adder.mispredicts",
        "sched.warp_instructions",
        "mem.l1_accesses",
        "crf.conflicts",
    ] {
        assert!(
            metric_names.iter().any(|n| n == required),
            "missing metric {required}"
        );
    }
}

#[test]
fn telemetry_counters_agree_with_activity_counters() {
    // The telemetry registry observes the same run the simulator counts:
    // the shared quantities must agree exactly.
    let spec = st2::kernels::histogram::build(Scale::Test);
    let cfg = GpuConfig::scaled(2).with_st2();
    let (tele, out, _) = traced_run(&spec, &cfg);
    let c = |name: &str| tele.registry().counter_by_name(name).unwrap_or(0);
    assert_eq!(c("sched.warp_instructions"), out.activity.warp_instructions);
    assert_eq!(c("adder.ops"), out.activity.adder.ops);
    assert_eq!(c("adder.mispredicts"), out.activity.adder.mispredicted_ops);
    assert_eq!(c("crf.reads"), out.activity.crf_reads);
    assert_eq!(c("crf.writes"), out.activity.crf_writes);
    assert_eq!(c("crf.conflicts"), out.activity.crf_conflicts);
    assert_eq!(c("mem.l1_accesses"), out.activity.l1_accesses);
    assert_eq!(c("mem.l1_misses"), out.activity.l1_misses);
    assert_eq!(c("mem.l2_misses"), out.activity.l2_misses);
    assert_eq!(c("mem.dram_accesses"), out.activity.dram_accesses);
    assert_eq!(tele.cycles(), out.cycles);
}

proptest! {
    // Telemetry must be a pure observer: enabled vs disabled collectors
    // produce identical cycles, identical ActivityCounters and identical
    // memory contents, across kernels and configurations.
    #[test]
    fn enabled_vs_disabled_never_changes_results(
        kernel_idx in 0usize..4,
        sms in 1u32..3,
        st2_on in any::<bool>(),
    ) {
        let spec = match kernel_idx {
            0 => st2::kernels::pathfinder::build(Scale::Test),
            1 => st2::kernels::histogram::build(Scale::Test),
            2 => st2::kernels::sortnets::build_k1(Scale::Test),
            _ => st2::kernels::qrng::build_k1(Scale::Test),
        };
        let mut cfg = GpuConfig::scaled(sms);
        if st2_on {
            cfg = cfg.with_st2();
        }

        let mut mem_plain = spec.memory.clone();
        let plain = run_timed(&spec.program, spec.launch, &mut mem_plain, &cfg);

        let (tele, traced, mem_traced) = traced_run(&spec, &cfg);

        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(&plain.activity, &traced.activity);
        prop_assert_eq!(mem_plain.as_bytes(), &mem_traced[..]);
        if st2_on {
            prop_assert!(tele.registry().counter_by_name("adder.ops").unwrap_or(0) > 0);
        }
    }
}
